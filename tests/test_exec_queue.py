"""Batch-queue transport: queue specs, submit templates, TCP
dial-back acquisition, degradation to the local pool, and the
byte-identity contract for ``--queue`` sweeps."""

import os
import sys
from pathlib import Path

import pytest

from repro.analysis.experiments import clear_cache
from repro.exec import (
    LOCAL_NODE,
    OUTCOME_OK,
    JsonlTelemetry,
    QUEUE_PRESETS,
    QueueSpec,
    QueueTransport,
    SweepExecutor,
    grid_specs,
    load_events,
    parse_queues,
    queue_table,
    resolve_queue_template,
    validate_events,
)
from repro.exec.transport import (
    QUEUE_ACQUIRE_TIMEOUT_ENV,
    QUEUE_PYTHON_ENV,
    REMOTE_FAULT_ENV,
    SUBMISSION_CONNECTED,
    TransportError,
    queue_submit_command,
    worker_launch_command,
)
from tests.test_exec_transport import (  # shared loopback idioms
    _spec,
    _summary_doc,
    isolated_cache,  # noqa: F401  (autouse fixture, re-exported)
)

REPO = Path(__file__).resolve().parent.parent

#: Submit template whose "scheduler" accepts the job but never starts
#: a worker — exercises the acquisition timeout without any waiting
#: process to clean up.
BLACKHOLE = "sh -c true"


# --------------------------------------------------------------------- #
# Queue specs and submit templates
# --------------------------------------------------------------------- #

def test_parse_queues_basic():
    assert parse_queues("slurm:16,pbs:8") == [QueueSpec("slurm", 16),
                                              QueueSpec("pbs", 8)]
    assert parse_queues("loopback") == [QueueSpec("loopback", 1)]


def test_parse_queues_rejects_local_and_bad_specs():
    with pytest.raises(ValueError, match="not a queue"):
        parse_queues("local:4")
    with pytest.raises(ValueError, match="listed twice"):
        parse_queues("slurm:2,slurm:4")
    with pytest.raises(ValueError, match="must be positive"):
        parse_queues("slurm:0")


def test_resolve_queue_template_presets_and_override():
    assert resolve_queue_template("slurm") == QUEUE_PRESETS["slurm"]
    assert resolve_queue_template("pbs") == QUEUE_PRESETS["pbs"]
    assert resolve_queue_template("loopback") \
        == QUEUE_PRESETS["loopback"]
    assert resolve_queue_template("slurm", "mysubmit {worker}") \
        == "mysubmit {worker}"
    # Unknown queue names need an explicit template.
    with pytest.raises(ValueError, match="no submit-template preset"):
        resolve_queue_template("condor")
    assert resolve_queue_template("condor", "csub {worker}") \
        == "csub {worker}"


def test_worker_launch_command_shape(monkeypatch):
    cmd = worker_launch_command("slurm", 3, "submit01:4242",
                                cwd="/srv/repo")
    # $PYTHONPATH must expand on the *compute* node, so the command
    # keeps the shell expansion outside any local quoting.
    assert "PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}" in cmd
    assert cmd.startswith("cd /srv/repo && ")
    assert cmd.endswith("-m repro.exec.remote_worker "
                        "--connect submit01:4242 --queue slurm --job 3")
    monkeypatch.setenv(QUEUE_PYTHON_ENV, "/opt/py/bin/python3")
    assert "/opt/py/bin/python3 -m repro.exec.remote_worker" \
        in worker_launch_command("slurm", 0, "h:1")


def test_queue_submit_command_substitution():
    argv = queue_submit_command(QUEUE_PRESETS["loopback"], "loopback",
                                2, "127.0.0.1:5000", cwd="/tmp/repo")
    assert argv[:2] == ["sh", "-c"]
    # The detached form backgrounds the worker with its output
    # redirected, so the submit command's captured pipes close.
    assert argv[2].endswith(">/dev/null 2>&1 &")
    assert "--queue loopback --job 2" in argv[2]
    assert "--connect 127.0.0.1:5000" in argv[2]

    slurm = queue_submit_command(QUEUE_PRESETS["slurm"], "slurm", 0,
                                 "h:1", cwd="/tmp/repo")
    assert slurm[0] == "sbatch"
    # --wrap takes the whole worker command as one argv token.
    wrap = slurm.index("--wrap")
    assert "repro.exec.remote_worker" in slurm[wrap + 1]
    assert len(slurm) == wrap + 2

    with pytest.raises(TransportError, match="empty"):
        queue_submit_command("   ", "q", 0, "h:1")


# --------------------------------------------------------------------- #
# Loopback acquisition
# --------------------------------------------------------------------- #

def test_queue_transport_acquires_and_runs(tmp_path):
    events = []
    transport = QueueTransport(
        QueueSpec("loopback", 2),
        emit=lambda kind, **kw: events.append((kind, kw)))
    try:
        clients = transport.acquire()
        assert len(clients) == 2
        assert all(c.hello["protocol"] == 1 for c in clients)
        assert all(c.speed > 0.0 for c in clients)
        assert {s.state for s in transport.submissions.values()} \
            == {SUBMISSION_CONNECTED}
        client = clients[0]
        client.send(_spec())
        status, payload, _host = client.recv()
        assert status == OUTCOME_OK
        assert payload is not None
        for c in clients:
            c.shutdown()
            c.close()
    finally:
        transport.close()
    kinds = [k for k, _ in events]
    assert kinds.count("queue_submit") == 2
    assert kinds.count("queue_connect") == 2
    connects = [kw for k, kw in events if k == "queue_connect"]
    assert all(kw["queue"] == "loopback" for kw in connects)
    assert all(kw["latency"] >= 0.0 for kw in connects)


def test_queue_sweep_byte_identical_to_serial(tmp_path):
    """The acceptance contract: a loopback:2 queue sweep merges
    byte-identically to the serial sweep."""
    specs = grid_specs(["astro"], ["sparse", "dense"],
                       ["ondemand", "static"], [4], scale=0.02)
    serial = SweepExecutor(jobs=1).run(specs)
    clear_cache(disk=True)  # force the queue workers to really run
    sink = JsonlTelemetry(tmp_path / "events.jsonl")
    queued = SweepExecutor(queues=parse_queues("loopback:2"),
                           schedule="lpt", telemetry=sink).run(specs)
    sink.close()
    assert [o.status for o in queued] == [OUTCOME_OK] * len(specs)
    assert _summary_doc(serial) == _summary_doc(queued)
    events = load_events(tmp_path / "events.jsonl")
    assert validate_events(events) == []
    assert sum(e["event"] == "queue_submit" for e in events) == 2
    assert sum(e["event"] == "queue_connect" for e in events) == 2
    begin = next(e for e in events if e["event"] == "sweep_begin")
    assert [n["node"] for n in begin["nodes"]] == ["loopback"]
    assert {e["node"] for e in events if e["event"] == "retire"} \
        == {"loopback"}


def test_mixed_nodes_and_queue_slots():
    from tests.test_exec_transport import LOOPBACK
    from repro.exec import parse_nodes

    specs = grid_specs(["astro"], ["sparse", "dense"], ["ondemand"],
                       [4], scale=0.02)
    serial = SweepExecutor(jobs=1).run(specs)
    clear_cache(disk=True)
    mixed = SweepExecutor(nodes=parse_nodes("n1:1"),
                          remote_template=LOOPBACK,
                          queues=parse_queues("loopback:1")).run(specs)
    assert [o.status for o in mixed] == [OUTCOME_OK] * len(specs)
    assert _summary_doc(serial) == _summary_doc(mixed)


# --------------------------------------------------------------------- #
# Degradation
# --------------------------------------------------------------------- #

def test_acquisition_timeout_falls_back_to_local(tmp_path, monkeypatch,
                                                 capsys):
    """Submit succeeds but no worker ever dials back: after the
    bounded acquisition timeout the sweep runs on the local pool."""
    monkeypatch.setenv(QUEUE_ACQUIRE_TIMEOUT_ENV, "1.0")
    sink = JsonlTelemetry(tmp_path / "events.jsonl")
    outcomes = SweepExecutor(queues=parse_queues("loopback:2"),
                             queue_template=BLACKHOLE,
                             telemetry=sink).run([_spec()])
    sink.close()
    assert outcomes[0].status == OUTCOME_OK
    err = capsys.readouterr().err
    assert "0/2 worker(s) connected" in err
    assert "no nodes reachable" in err
    events = load_events(tmp_path / "events.jsonl")
    assert validate_events(events) == []
    lost, = (e for e in events if e["event"] == "node_lost")
    assert lost["node"] == "loopback" and lost["slots"] == 2
    assert lost["reason"] == "acquisition timeout"
    retire, = (e for e in events if e["event"] == "retire")
    assert retire["node"] == LOCAL_NODE


def test_submit_failure_drops_queue_whole(tmp_path, capsys):
    """A rejected submit command (scheduler down, bad sbatch flags)
    drops the queue before any waiting — no acquisition timeout."""
    sink = JsonlTelemetry(tmp_path / "events.jsonl")
    outcomes = SweepExecutor(queues=parse_queues("loopback:2"),
                             queue_template="sh -c 'exit 7'",
                             telemetry=sink).run([_spec()])
    sink.close()
    assert outcomes[0].status == OUTCOME_OK
    err = capsys.readouterr().err
    assert "queue loopback unavailable" in err
    events = load_events(tmp_path / "events.jsonl")
    lost, = (e for e in events if e["event"] == "node_lost")
    assert lost["node"] == "loopback" and lost["phase"] == "startup"


def test_queue_worker_death_requeues_and_completes(tmp_path,
                                                   monkeypatch):
    """A queue worker dying mid-run (job preempted / killed): the
    socket EOF requeues the spec exactly like a remote worker death,
    and the die-once token lets the retry succeed."""
    token = tmp_path / "die.tok"
    monkeypatch.setenv(REMOTE_FAULT_ENV,
                       f"die:astro-sparse-static:{token}")
    specs = grid_specs(["astro"], ["sparse"], ["ondemand", "static"],
                       [4], scale=0.02)
    sink = JsonlTelemetry(tmp_path / "events.jsonl")
    outcomes = SweepExecutor(queues=parse_queues("loopback:2"),
                             telemetry=sink).run(specs)
    sink.close()
    assert [o.status for o in outcomes] == [OUTCOME_OK] * 2
    assert token.exists()
    events = load_events(tmp_path / "events.jsonl")
    assert validate_events(events) == []
    requeues = [e for e in events if e["event"] == "requeue"]
    assert len(requeues) == 1
    assert requeues[0]["run"] == "astro-sparse-static-4"
    assert sum(e["event"] == "retire" for e in events) == len(specs)


# --------------------------------------------------------------------- #
# Telemetry
# --------------------------------------------------------------------- #

def test_queue_table_aggregates_per_queue():
    events = [
        {"event": "queue_submit", "queue": "slurm", "job": 0},
        {"event": "queue_submit", "queue": "slurm", "job": 1},
        {"event": "queue_connect", "queue": "slurm", "job": 0,
         "latency": 2.0},
        {"event": "queue_submit", "queue": "pbs", "job": 0},
    ]
    table = queue_table(events)
    assert "per-queue acquisition" in table
    lines = {ln.split()[0]: ln for ln in table.splitlines()
             if ln and ln.split()[0] in ("slurm", "pbs")}
    assert " 2 " in lines["slurm"] and " 1 " in lines["slurm"]
    assert "2.00/2.00/2.00" in lines["slurm"]
    assert " 1 " in lines["pbs"] and " 0 " in lines["pbs"]
    assert queue_table([]) == "(no queue activity in the event log)"


# --------------------------------------------------------------------- #
# CLI integration
# --------------------------------------------------------------------- #

def test_cli_sweep_queue_loopback(tmp_path):
    from repro.cli import main

    out_a = tmp_path / "serial.json"
    out_b = tmp_path / "queue.json"
    base = ["sweep", "--dataset", "astro", "--seeding", "sparse",
            "--algorithm", "ondemand,static", "--ranks", "4",
            "--scale", "0.02"]
    assert main(base + ["--out", str(out_a)]) == 0
    clear_cache(disk=True)
    code = main(base + ["--out", str(out_b),
                        "--queue", "loopback:2",
                        "--telemetry", str(tmp_path / "telem")])
    assert code == 0
    assert out_a.read_bytes() == out_b.read_bytes()
    report = (tmp_path / "telem" / "utilization.txt").read_text()
    assert "per-queue acquisition" in report
    assert "loopback" in report


def test_cli_sweep_rejects_bad_queue_config(capsys):
    from repro.cli import main

    assert main(["sweep", "--queue", "local:2", "--dry-run"]) == 2
    assert "not a queue" in capsys.readouterr().err
    assert main(["sweep", "--queue", "condor:2", "--dry-run"]) == 2
    assert "no submit-template preset" in capsys.readouterr().err
    assert main(["sweep", "--nodes", "n1:1", "--queue", "n1:1",
                 "--queue-template", BLACKHOLE, "--dry-run"]) == 2
    assert "listed in both" in capsys.readouterr().err
