"""Adaptive sweep scheduling: estimator, LPT planner, warm pool."""

import dataclasses
import importlib.util
import json
import multiprocessing
import sys
from pathlib import Path

import pytest

from repro.analysis.experiments import (
    ExperimentKey,
    RunSummary,
    _entry_path,
    _save_entry,
    clear_cache,
    run_experiment,
    sweep_dataset,
)
from repro.exec import (
    OUTCOME_CRASHED,
    OUTCOME_OK,
    OUTCOME_OOM,
    JsonlTelemetry,
    RunSpec,
    RuntimeEstimator,
    SweepExecutor,
    grid_specs,
    load_events,
    model_estimate,
    plan_schedule,
    pool_main,
    schedule_table,
    validate_events,
)
from repro.exec.estimate import SOURCE_HISTORY, SOURCE_MODEL
from repro.exec.schedule import (
    AUTO_HISTORY_THRESHOLD,
    SCHEDULE_AUTO,
    SCHEDULE_FIFO,
    SCHEDULE_LPT,
    dry_run_table,
)
from repro.exec.worker import FAULT_ENV

REPO = Path(__file__).resolve().parent.parent


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    import repro.analysis.experiments as exp
    exp._DISK_LOADED = False
    clear_cache()
    yield
    clear_cache()
    exp._DISK_LOADED = False


@pytest.fixture(scope="module")
def bench_mod():
    spec = importlib.util.spec_from_file_location(
        "bench_trajectory_sched",
        REPO / "benchmarks" / "bench_trajectory.py")
    mod = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("bench_trajectory_sched", mod)
    spec.loader.exec_module(mod)
    return mod


def _spec(dataset="astro", seeding="sparse", algorithm="ondemand",
          n_ranks=4, **kw):
    return RunSpec(dataset=dataset, seeding=seeding, algorithm=algorithm,
                   n_ranks=n_ranks, scale=kw.pop("scale", 0.02), **kw)


# --------------------------------------------------------------------- #
# Static cost model
# --------------------------------------------------------------------- #

def test_model_orders_by_seed_count():
    dense = _spec(dataset="thermal", seeding="dense", scale=1.0)
    sparse = _spec(dataset="thermal", seeding="sparse", scale=1.0)
    assert model_estimate(dense) > model_estimate(sparse)


def test_model_scales_with_scale_and_discounts_probe():
    big = _spec(scale=1.0)
    small = _spec(scale=0.1)
    assert model_estimate(big) > model_estimate(small)
    probe = _spec(scale=1.0, oom_probe=True)
    assert model_estimate(probe) < model_estimate(big)
    assert model_estimate(probe) > 0.0


# --------------------------------------------------------------------- #
# History-backed estimator
# --------------------------------------------------------------------- #

def test_estimator_prefers_history_and_averages():
    est = RuntimeEstimator()
    spec = _spec(scale=0.5)
    assert est.estimate(spec).source == SOURCE_MODEL
    est.record(spec.name, 2.0, scale=0.5)
    est.record(spec.name, 4.0, scale=0.5)
    e = est.estimate(spec)
    assert e.source == SOURCE_HISTORY
    assert e.seconds == pytest.approx(3.0)


def test_estimator_rescales_other_scale_samples():
    est = RuntimeEstimator()
    spec = _spec(scale=1.0)
    est.record(spec.name, 2.0, scale=0.5)  # measured at half scale
    e = est.estimate(spec)
    assert e.source == SOURCE_HISTORY
    assert e.seconds == pytest.approx(4.0)  # linear in scale


def test_estimator_scale_free_telemetry_samples_match_any_scale():
    est = RuntimeEstimator()
    spec = _spec(scale=0.25)
    est.record(spec.name, 7.0, scale=None)
    assert est.estimate(spec).seconds == pytest.approx(7.0)


def test_estimator_loads_cache_dir_elapsed():
    key = ExperimentKey(dataset="astro", seeding="sparse",
                        algorithm="ondemand", n_ranks=4, scale=0.5)
    _save_entry(key, RunSummary(key=key, status="ok", wall_clock=1.0),
                elapsed=3.5)
    # A pre-scheduler entry without elapsed contributes nothing.
    old = ExperimentKey(dataset="astro", seeding="dense",
                        algorithm="static", n_ranks=4, scale=0.5)
    _save_entry(old, RunSummary(key=old, status="ok"))
    est = RuntimeEstimator.from_history()
    spec = _spec(algorithm="ondemand", scale=0.5)
    e = est.estimate(spec)
    assert e.source == SOURCE_HISTORY
    assert e.seconds == pytest.approx(3.5)
    assert est.estimate(_spec(seeding="dense",
                              algorithm="static")).source == SOURCE_MODEL


def test_estimator_loads_event_log_retires(tmp_path):
    log = tmp_path / "events.jsonl"
    events = [
        {"event": "sweep_begin", "t": 0.0, "jobs": 1, "runs": 2},
        {"event": "retire", "t": 1.0, "run": "astro-sparse-ondemand-4",
         "worker": 0, "status": "ok", "elapsed": 2.5},
        {"event": "retire", "t": 2.0, "run": "astro-sparse-static-4",
         "worker": 0, "status": "crashed", "elapsed": 9.9},
    ]
    log.write_text("\n".join(json.dumps(e) for e in events) + "\n")
    est = RuntimeEstimator.from_history(event_logs=[log])
    assert est.estimate(_spec()).seconds == pytest.approx(2.5)
    # Crashed runs are not runtime history.
    assert est.estimate(_spec(algorithm="static")).source == SOURCE_MODEL


def test_run_experiment_persists_elapsed():
    run_experiment("astro", "sparse", "ondemand", 4, scale=0.02)
    key = ExperimentKey(dataset="astro", seeding="sparse",
                        algorithm="ondemand", n_ranks=4, scale=0.02)
    blob = json.loads(_entry_path(key).read_text())
    assert blob["elapsed"] > 0.0
    est = RuntimeEstimator.from_history()
    assert est.has_history(_spec())


# --------------------------------------------------------------------- #
# Schedule planning
# --------------------------------------------------------------------- #

def test_fifo_plan_keeps_spec_order():
    specs = grid_specs(["astro"], ["sparse", "dense"],
                       ["static", "ondemand"], [4], scale=0.02)
    plan = plan_schedule(specs, policy=SCHEDULE_FIFO)
    assert plan.effective == SCHEDULE_FIFO
    assert [i for i, _ in plan.ordered] == list(range(len(specs)))


def test_lpt_plan_sorts_longest_first_deterministically():
    est = RuntimeEstimator()
    specs = [_spec(algorithm=a) for a in ("static", "ondemand", "hybrid")]
    est.record(specs[0].name, 1.0)
    est.record(specs[1].name, 5.0)
    est.record(specs[2].name, 3.0)
    plan = plan_schedule(specs, policy=SCHEDULE_LPT, estimator=est)
    assert [i for i, _ in plan.ordered] == [1, 2, 0]
    # Ties break on original index: stable and deterministic.
    est2 = RuntimeEstimator()
    for s in specs:
        est2.record(s.name, 2.0)
    plan2 = plan_schedule(specs, policy=SCHEDULE_LPT, estimator=est2)
    assert [i for i, _ in plan2.ordered] == [0, 1, 2]


def test_auto_resolves_on_history_coverage():
    specs = [_spec(algorithm=a) for a in ("static", "ondemand")]
    cold = plan_schedule(specs, policy=SCHEDULE_AUTO,
                         estimator=RuntimeEstimator())
    assert cold.effective == SCHEDULE_FIFO
    est = RuntimeEstimator()
    est.record(specs[0].name, 4.0)  # 50% coverage == threshold
    assert AUTO_HISTORY_THRESHOLD == 0.5
    warm = plan_schedule(specs, policy=SCHEDULE_AUTO, estimator=est)
    assert warm.effective == SCHEDULE_LPT
    assert warm.coverage == pytest.approx(0.5)


def test_auto_stays_fifo_just_below_threshold():
    specs = [_spec(algorithm=a)
             for a in ("static", "ondemand", "hybrid")]
    est = RuntimeEstimator()
    est.record(specs[0].name, 4.0)  # 1/3 coverage, under the 50% bar
    plan = plan_schedule(specs, policy=SCHEDULE_AUTO, estimator=est)
    assert plan.effective == SCHEDULE_FIFO
    assert plan.coverage == pytest.approx(1 / 3)


def test_estimator_zero_scale_sample_falls_back_to_model():
    """A degenerate prior (scale recorded as 0) must not divide by
    zero when rescaling to the requested scale — the static model
    takes over instead."""
    spec = _spec(scale=0.1)
    est = RuntimeEstimator()
    est.record(spec.name, 5.0, scale=0.0)
    e = est.estimate(spec)
    assert e.source == SOURCE_MODEL
    assert e.seconds == pytest.approx(model_estimate(spec))


def test_estimator_ignores_cache_hit_samples():
    """Near-zero elapsed values are sweep-cache hits, not runtimes;
    recording them would teach LPT that everything is instant."""
    spec = _spec()
    est = RuntimeEstimator()
    assert est.record(spec.name, 0.001) is False
    assert not est.has_history(spec)
    assert est.record(spec.name, 0.5) is True
    assert est.estimate(spec).source == SOURCE_HISTORY


def test_schedule_event_logs_resolved_jobs(tmp_path):
    """--jobs auto resolves to a concrete worker count before the
    schedule event is emitted, so the log names the real pool size."""
    import os as _os

    assert SweepExecutor(jobs=0).jobs == (_os.cpu_count() or 1)
    sink = JsonlTelemetry(tmp_path / "events.jsonl")
    SweepExecutor(jobs=2, telemetry=sink).run([_spec()])
    sink.close()
    events = load_events(tmp_path / "events.jsonl")
    assert next(e for e in events
                if e["event"] == "schedule")["jobs"] == 2
    assert next(e for e in events
                if e["event"] == "sweep_begin")["jobs"] == 2


def test_unknown_policy_rejected():
    with pytest.raises(ValueError, match="unknown schedule policy"):
        plan_schedule([_spec()], policy="random")


def test_dry_run_table_lists_plan():
    est = RuntimeEstimator()
    specs = [_spec(algorithm=a) for a in ("static", "ondemand")]
    est.record(specs[1].name, 9.0)
    text = dry_run_table(plan_schedule(specs, policy=SCHEDULE_LPT,
                                       estimator=est), jobs=2)
    lines = text.splitlines()
    assert "schedule lpt" in lines[0]
    assert "history" in text and "model" in text
    assert "predicted total" in lines[-1]
    assert "ideal makespan on 2 workers" in lines[-1]
    # Longest-first: the history-backed 9 s run leads.
    first_row = next(ln for ln in lines if "astro-sparse" in ln)
    assert "ondemand" in first_row


# --------------------------------------------------------------------- #
# Determinism: artifacts byte-identical across schedules and job counts
# --------------------------------------------------------------------- #

def test_bench_snapshot_byte_identical_across_schedules(bench_mod,
                                                        tmp_path):
    """The acceptance contract: BENCH artifacts from --schedule
    fifo/lpt/auto at --jobs 1/4 are all byte-identical."""
    args = ["--scale", "0.05", "--ranks", "4", "--sample-interval", "2.0",
            "--date", "sched"]
    variants = [("fifo", "1"), ("lpt", "1"), ("fifo", "4"), ("lpt", "4"),
                ("auto", "4")]
    blobs = {}
    for schedule, jobs in variants:
        out = tmp_path / f"{schedule}-j{jobs}"
        assert bench_mod.main(args + ["--out", str(out), "--jobs", jobs,
                                      "--schedule", schedule]) == 0
        blobs[(schedule, jobs)] = (out / "BENCH_sched.json").read_bytes()
        clear_cache(disk=True)
    baseline = blobs[("fifo", "1")]
    for variant, blob in blobs.items():
        assert blob == baseline, f"{variant} diverged from serial FIFO"


def test_sweep_dataset_lpt_matches_serial_fifo():
    serial = sweep_dataset("astro", rank_counts=(4,),
                           algorithms=("ondemand", "static"),
                           seedings=("sparse",), scale=0.02)
    clear_cache(disk=True)
    lpt = sweep_dataset("astro", rank_counts=(4,),
                        algorithms=("ondemand", "static"),
                        seedings=("sparse",), scale=0.02,
                        jobs=4, schedule="lpt")
    assert serial == lpt


# --------------------------------------------------------------------- #
# Schedule telemetry: plan event + accuracy analyzer
# --------------------------------------------------------------------- #

def test_schedule_event_emitted_and_log_validates(tmp_path):
    specs = grid_specs(["astro"], ["sparse"], ["static", "ondemand"],
                       [4], scale=0.02)
    sink = JsonlTelemetry(tmp_path / "events.jsonl")
    with sink:
        outcomes = SweepExecutor(jobs=2, telemetry=sink,
                                 schedule="lpt").run(specs)
    assert all(o.ok for o in outcomes)
    events = load_events(sink.path)
    assert validate_events(events) == []
    [sched] = [e for e in events if e["event"] == "schedule"]
    assert sched["policy"] == "lpt" and sched["effective"] == "lpt"
    assert {p["run"] for p in sched["plan"]} == {s.name for s in specs}
    assert all(p["predicted"] > 0.0 for p in sched["plan"])
    begin = events[0]
    assert begin["event"] == "sweep_begin" and begin["schedule"] == "lpt"


def test_schedule_table_reports_mape(tmp_path):
    specs = grid_specs(["astro"], ["sparse"], ["ondemand"], [4],
                       scale=0.02)
    sink = JsonlTelemetry(tmp_path / "events.jsonl")
    with sink:
        SweepExecutor(jobs=2, telemetry=sink, schedule="auto").run(specs)
    events = load_events(sink.path)
    text = schedule_table(events)
    assert "schedule auto" in text
    assert "estimator MAPE" in text
    assert "astro-sparse-ondemand-4" in text
    from repro.exec import telemetry_report
    assert "estimator MAPE" in telemetry_report(events)


def test_schedule_table_without_schedule_event():
    assert "(no schedule event" in schedule_table(
        [{"event": "sweep_begin", "t": 0.0, "jobs": 1, "runs": 0}])


# --------------------------------------------------------------------- #
# Persistent warm pool
# --------------------------------------------------------------------- #

def test_pool_worker_executes_many_specs_in_one_process():
    """The pool protocol: one long-lived child handles several specs
    and exits cleanly on the None sentinel."""
    ctx = multiprocessing.get_context()
    parent, child = ctx.Pipe(duplex=True)
    proc = ctx.Process(target=pool_main, args=(child, False), daemon=True)
    proc.start()
    child.close()
    for algorithm in ("ondemand", "static"):
        parent.send(_spec(algorithm=algorithm))
        status, payload, host = parent.recv()
        assert status == OUTCOME_OK
        assert payload.status == "ok"
        assert host is None
    parent.send(None)
    proc.join(timeout=30)
    assert proc.exitcode == 0
    parent.close()


def test_pool_reuses_one_worker_across_runs(tmp_path):
    """jobs=1 with a timeout runs every spec through a single
    persistent slot; the event log shows one worker doing all runs."""
    specs = grid_specs(["astro"], ["sparse"],
                       ["static", "ondemand", "hybrid"], [4], scale=0.02)
    sink = JsonlTelemetry(tmp_path / "events.jsonl")
    with sink:
        outcomes = SweepExecutor(jobs=1, timeout=120.0,
                                 telemetry=sink).run(specs)
    assert [o.status for o in outcomes] == [OUTCOME_OK] * 3
    events = load_events(sink.path)
    assert validate_events(events) == []
    assert {e["worker"] for e in events if e["event"] == "start"} == {0}


def test_pool_respawns_slot_after_crash(monkeypatch):
    """A crashed worker's slot is respawned: the next spec on the same
    single slot still completes."""
    monkeypatch.setenv(FAULT_ENV, "crash:astro-sparse-static")
    specs = grid_specs(["astro"], ["sparse"], ["static", "ondemand"],
                       [4], scale=0.02)
    outcomes = SweepExecutor(jobs=1, timeout=120.0).run(specs)
    assert outcomes[0].status == OUTCOME_CRASHED
    assert "exit code 3" in outcomes[0].error
    assert outcomes[1].status == OUTCOME_OK


def test_pooled_memoryerror_is_oom_and_pool_survives(monkeypatch):
    """A MemoryError inside a pooled (non-isolated) run reports the
    gated oom outcome; later runs still complete."""
    monkeypatch.setenv(FAULT_ENV, "memerr:astro-sparse-static")
    specs = grid_specs(["astro"], ["sparse"], ["static", "ondemand"],
                       [4], scale=0.02)
    outcomes = SweepExecutor(jobs=2).run(specs)
    assert outcomes[0].status == OUTCOME_OOM
    assert outcomes[0].payload == {"status": "oom"}
    assert outcomes[1].status == OUTCOME_OK


def test_isolate_spec_runs_oneshot_even_from_pool(tmp_path, monkeypatch):
    """isolate specs get a dedicated one-shot child under the pool: a
    real MemoryError there is the probe's measured outcome and the
    pooled runs around it are untouched."""
    monkeypatch.setenv(FAULT_ENV, "memerr:oomprobe")
    probe = RunSpec(dataset="thermal", seeding="dense",
                    algorithm="static", n_ranks=4, scale=0.02,
                    mode="bench", tag="oomprobe", isolate=True,
                    oom_probe=True)
    plain = _spec()
    outcomes = SweepExecutor(jobs=2).run([plain, probe])
    assert outcomes[0].status == OUTCOME_OK
    assert outcomes[1].status == OUTCOME_OOM
    assert outcomes[1].payload == {"status": "oom"}


# --------------------------------------------------------------------- #
# CLI surfaces
# --------------------------------------------------------------------- #

def test_cli_sweep_dry_run_prints_plan_and_runs_nothing(tmp_path,
                                                        capsys):
    from repro.cli import main

    code = main(["sweep", "--dataset", "astro", "--seeding", "sparse",
                 "--algorithm", "ondemand,static", "--ranks", "4",
                 "--scale", "0.02", "--schedule", "lpt", "--dry-run"])
    assert code == 0
    out = capsys.readouterr().out
    assert "schedule lpt" in out
    assert "predicted total" in out
    assert "astro-sparse-ondemand-4" in out
    # Nothing executed: the sweep cache stayed empty.
    key = ExperimentKey(dataset="astro", seeding="sparse",
                        algorithm="ondemand", n_ranks=4, scale=0.02)
    assert not _entry_path(key).exists()


def test_cli_sweep_schedule_with_telemetry(tmp_path, capsys):
    from repro.cli import main

    telem = tmp_path / "telem"
    code = main(["sweep", "--dataset", "astro", "--seeding", "sparse",
                 "--algorithm", "ondemand", "--ranks", "4",
                 "--scale", "0.02", "--jobs", "2", "--schedule", "lpt",
                 "--telemetry", str(telem)])
    assert code == 0
    events = load_events(telem / "events.jsonl")
    assert validate_events(events) == []
    assert any(e["event"] == "schedule" for e in events)
    report = (telem / "utilization.txt").read_text()
    assert "estimator MAPE" in report


def test_bench_dry_run_flag(bench_mod, capsys, tmp_path):
    code = bench_mod.main(["--scale", "0.05", "--ranks", "4",
                           "--schedule", "lpt", "--dry-run",
                           "--out", str(tmp_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "predicted total" in out
    assert not list(tmp_path.glob("BENCH_*.json"))
