"""CLI surfaces of host telemetry: profile, sweep --telemetry, diff --host."""

import json
import re

import pytest

from repro.cli import main
from repro.obs.host import HOST_SCHEMA

COLLAPSED_LINE = re.compile(r"^\S+(?:;\S+)* \d+$")

PROFILE_ARGS = ["profile", "astro", "--seeding", "sparse",
                "--algorithm", "hybrid", "--ranks", "4",
                "--scale", "0.05", "--interval", "0.002"]

SWEEP_ARGS = ["sweep", "--dataset", "astro", "--seeding", "sparse",
              "--algorithm", "static,ondemand", "--ranks", "4",
              "--scale", "0.02"]


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    import repro.analysis.experiments as exp
    exp._DISK_LOADED = False
    exp.clear_cache()
    yield
    exp.clear_cache()
    exp._DISK_LOADED = False


# --------------------------------------------------------------------- #
# repro profile
# --------------------------------------------------------------------- #

def test_profile_prints_host_and_sim_separately(capsys):
    assert main(PROFILE_ARGS) == 0
    out = capsys.readouterr().out
    assert "simulated wall clock" in out
    assert "everything below is real machine time" in out
    assert "host telemetry (real machine time" in out
    assert "sampled stacks" in out
    # The canonical phases show up in the host table.
    assert "setup" in out
    assert "advect" in out


def test_profile_writes_valid_collapsed_file(tmp_path, capsys):
    path = tmp_path / "out.collapsed"
    assert main(PROFILE_ARGS + ["--collapsed", str(path)]) == 0
    err = capsys.readouterr().err
    assert "flamegraph.pl" in err
    lines = path.read_text().splitlines()
    assert lines, "collapsed output is empty"
    for line in lines:
        assert COLLAPSED_LINE.match(line), line
    # Phase-labeled roots: the flamegraph splits by phase.
    roots = {line.split(";")[0].split(" ")[0] for line in lines}
    assert "advect" in roots


def test_profile_json_document(tmp_path, capsys):
    path = tmp_path / "deep" / "p.json"
    assert main(PROFILE_ARGS + ["--json", str(path)]) == 0
    doc = json.loads(path.read_text())
    assert doc["host_schema"] == HOST_SCHEMA
    assert doc["scenario"]["name"] == "astro-sparse-hybrid-4"
    assert doc["scenario"]["scale"] == 0.05
    host = doc["host"]
    assert host["wall_s"] > 0.0
    assert "advect" in host["phases"]
    # Strictly host-side: no simulated metrics in the profile document.
    assert "wall_clock" not in json.dumps(doc)


def test_profile_invalid_scenario_exits_2(capsys):
    assert main(["profile", "astro", "--ranks", "0"]) == 2
    assert "invalid scenario" in capsys.readouterr().err


# --------------------------------------------------------------------- #
# repro sweep --telemetry
# --------------------------------------------------------------------- #

def test_sweep_telemetry_writes_valid_artifacts(tmp_path, capsys):
    from repro.exec import load_events, validate_events

    telem = tmp_path / "telem"
    assert main(SWEEP_ARGS + ["--jobs", "2",
                              "--telemetry", str(telem)]) == 0
    captured = capsys.readouterr()
    assert "telemetry:" in captured.err
    events = load_events(telem / "events.jsonl")
    assert validate_events(events) == []
    retires = [e for e in events if e["event"] == "retire"]
    assert len(retires) == 2
    assert all(e["host"]["wall_s"] > 0 for e in retires)
    util = (telem / "utilization.txt").read_text()
    assert "per-worker timeline" in util
    assert "makespan" in util


def test_sweep_output_identical_with_and_without_telemetry(tmp_path,
                                                           capsys):
    import repro.analysis.experiments as exp

    assert main(SWEEP_ARGS + ["--jobs", "2",
                              "--out", str(tmp_path / "plain.json")]) == 0
    plain_out = capsys.readouterr().out
    exp.clear_cache(disk=True)
    assert main(SWEEP_ARGS + ["--jobs", "2",
                              "--out", str(tmp_path / "telem.json"),
                              "--telemetry",
                              str(tmp_path / "telem")]) == 0
    telem_out = capsys.readouterr().out
    # stdout table and JSON artifact are byte-identical: telemetry
    # never perturbs deterministic outputs.
    assert plain_out == telem_out
    assert ((tmp_path / "plain.json").read_bytes()
            == (tmp_path / "telem.json").read_bytes())
    assert "host" not in json.loads((tmp_path / "telem.json").read_text())


# --------------------------------------------------------------------- #
# repro diff --host
# --------------------------------------------------------------------- #

def _write_profile(tmp_path, name):
    path = tmp_path / name
    assert main(PROFILE_ARGS + ["--json", str(path)]) == 0
    return path


def test_diff_host_is_advisory_exit_0(tmp_path, capsys):
    path = _write_profile(tmp_path, "p.json")
    capsys.readouterr()
    assert main(["diff", "--host", str(path), str(path)]) == 0
    out = capsys.readouterr().out
    assert "advisory" in out
    assert "never gated" in out
    assert "phase.advect.wall_s" in out


def test_diff_host_rejects_non_profile_documents(tmp_path, capsys):
    bench = tmp_path / "bench.json"
    bench.write_text(json.dumps({"schema": 3, "runs": {}}))
    assert main(["diff", "--host", str(bench), str(bench)]) == 2
    assert "not a host profile" in capsys.readouterr().err


def test_diff_host_renames_mismatched_scenarios(tmp_path, capsys):
    path = _write_profile(tmp_path, "p.json")
    other = tmp_path / "other.json"
    doc = json.loads(path.read_text())
    doc["scenario"]["name"] = "astro-dense-hybrid-4"
    other.write_text(json.dumps(doc))
    capsys.readouterr()
    assert main(["diff", "--host", str(path), str(other)]) == 0
    captured = capsys.readouterr()
    assert "comparing different scenarios" in captured.err
    assert "advisory" in captured.out
