"""Tests of the three application-dataset stand-ins.

These check the *transport structure* each field must contribute to the
evaluation (DESIGN.md §2), not specific velocity values.
"""

import numpy as np
import pytest

from repro.fields import (
    SupernovaField,
    ThermalHydraulicsField,
    TokamakField,
)
from repro.integrate import IntegratorConfig, integrate_single
from repro.mesh.decomposition import Decomposition
from repro.seeding import circle_seeds, dense_cluster_seeds, sparse_random_seeds


def blocks_visited(field, seeds, max_steps=150):
    dec = Decomposition(field.domain, (4, 4, 4), (6, 6, 6))
    cfg = IntegratorConfig(max_steps=max_steps, rtol=1e-4, atol=1e-6)
    blocks = {}
    lines = integrate_single(field, dec, seeds, cfg, blocks=blocks)
    return lines, blocks, dec


# --------------------------------------------------------------------- #
# Supernova
# --------------------------------------------------------------------- #
def test_supernova_deterministic_in_seed():
    a = SupernovaField(seed=3)
    b = SupernovaField(seed=3)
    c = SupernovaField(seed=4)
    pts = np.random.default_rng(0).uniform(-0.9, 0.9, size=(20, 3))
    assert np.allclose(a.evaluate(pts), b.evaluate(pts))
    assert not np.allclose(a.evaluate(pts), c.evaluate(pts))


def test_supernova_finite_everywhere():
    f = SupernovaField()
    pts = np.random.default_rng(1).uniform(-1, 1, size=(500, 3))
    v = f.evaluate(pts)
    assert np.all(np.isfinite(v))
    assert np.all(np.linalg.norm(v, axis=1) < 50.0)


def test_supernova_core_attracts():
    """Radial velocity component is negative inside the core radius."""
    f = SupernovaField()
    rng = np.random.default_rng(2)
    d = rng.normal(size=(50, 3))
    d /= np.linalg.norm(d, axis=1, keepdims=True)
    pts = d * (0.5 * f.core_radius)
    v = f.evaluate(pts)
    radial = np.einsum("kc,kc->k", v, d)
    assert np.mean(radial) < 0.0


def test_supernova_rotates_about_z():
    f = SupernovaField(turbulence=0.0)
    p = np.array([[0.3, 0.0, 0.0]])
    v = f.evaluate(p)
    assert v[0, 1] > 0.0  # counter-clockwise rotation


def test_supernova_sparse_seeds_traverse_many_blocks():
    f = SupernovaField()
    seeds = sparse_random_seeds(f.domain, 30, seed=5)
    lines, blocks, dec = blocks_visited(f, seeds)
    per_curve = [len(set(np.unique(dec.locate(l.vertices()))))
                 for l in lines]
    assert np.mean(per_curve) > 3.0


def test_supernova_invalid_radii_rejected():
    with pytest.raises(ValueError):
        SupernovaField(core_radius=0.5, shock_radius=0.3)


# --------------------------------------------------------------------- #
# Tokamak
# --------------------------------------------------------------------- #
def test_tokamak_field_is_toroidal():
    """Inside the plasma, the field is dominated by the toroidal
    component (perpendicular to the cylindrical radius)."""
    f = TokamakField(edge_chaos=0.0)
    p = np.array([[f.major_radius, 0.0, 0.0]])
    v = f.evaluate(p)
    # At this point e_phi = (0, 1, 0).
    assert abs(v[0, 1]) > 5 * abs(v[0, 0])
    assert abs(v[0, 1]) > 5 * abs(v[0, 2])


def test_tokamak_flux_radius_nearly_conserved():
    """Without edge chaos, field lines stay on their flux surface."""
    f = TokamakField(edge_chaos=0.0)
    seeds = np.array([[f.major_radius + 0.1, 0.0, 0.0]])
    dec = Decomposition(f.domain, (4, 4, 4), (8, 8, 8))
    cfg = IntegratorConfig(max_steps=400, h_max=0.02, rtol=1e-6, atol=1e-9)
    lines = integrate_single(f, dec, seeds, cfg)
    rho = f.flux_radius(lines[0].vertices())
    # Sampled-grid interpolation adds error; rho must stay near 0.1.
    assert rho.min() > 0.04 and rho.max() < 0.2


def test_tokamak_lines_orbit_not_exit():
    """Seeds inside the torus keep orbiting (MAX_STEPS termination)."""
    f = TokamakField()
    seeds = dense_cluster_seeds((f.major_radius, 0.0, 0.0), 0.05, 12,
                                seed=7, clip_bounds=f.domain)
    lines, _, _ = blocks_visited(f, seeds, max_steps=150)
    max_steps_count = sum(l.status.name == "MAX_STEPS" for l in lines)
    assert max_steps_count >= 10


def test_tokamak_finite_near_machine_axis():
    f = TokamakField()
    pts = np.array([[0.0, 0.0, 0.0], [1e-6, 0.0, 0.5]])
    v = f.evaluate(pts)
    assert np.all(np.isfinite(v))
    assert np.all(np.abs(v) < 100)


def test_tokamak_invalid_radii_rejected():
    with pytest.raises(ValueError):
        TokamakField(major_radius=0.3, minor_radius=0.4)


# --------------------------------------------------------------------- #
# Thermal hydraulics
# --------------------------------------------------------------------- #
def test_thermal_jets_flow_into_box():
    f = ThermalHydraulicsField()
    inlets = f.inlet_positions() + [0.01, 0.0, 0.0]
    v = f.evaluate(inlets)
    assert np.all(v[:, 0] > 0.5)  # strong +x at the inlet mouths


def test_thermal_no_outflow_through_inlet_wall():
    """Near x=0 the x-velocity is non-negative (wall damping)."""
    f = ThermalHydraulicsField()
    rng = np.random.default_rng(3)
    pts = rng.uniform(size=(200, 3))
    pts[:, 0] = 1e-9
    assert np.all(f.evaluate(pts)[:, 0] >= -1e-9)


def test_thermal_outlet_pulls():
    f = ThermalHydraulicsField()
    p = np.array([[0.9, 0.85, 0.85]])
    v = f.evaluate(p)
    to_outlet = np.asarray(f.outlet_center) - p[0]
    assert np.dot(v[0], to_outlet) > 0.0


def test_thermal_dense_circle_touches_few_blocks():
    """The dense inlet seeding needs little data (paper §5.3)."""
    f = ThermalHydraulicsField()
    cy, cz = f.inlet_centers[0]
    seeds = circle_seeds((0.06, cy, cz), 0.03, 40)
    lines, blocks, _ = blocks_visited(f, seeds, max_steps=60)
    assert len(blocks) <= 32  # out of 64


def test_thermal_needs_an_inlet():
    with pytest.raises(ValueError):
        ThermalHydraulicsField(inlet_centers=())
