"""Cost-model arithmetic against the paper's stated scales."""

import pytest

from repro.storage.costmodel import DataCostModel
from repro.sim.machine import MachineSpec


def test_paper_scale_block():
    """512 blocks x 1M cells x 12 B = ~6 GB dataset, 12 MB per block."""
    cm = DataCostModel()
    assert cm.block_nbytes == 12_000_000
    assert 512 * cm.block_nbytes == 6_144_000_000


def test_dataset_exceeds_rank_memory():
    """The premise of 'very large': one rank cannot hold the dataset."""
    cm = DataCostModel()
    spec = MachineSpec()
    assert 512 * cm.block_nbytes > spec.memory_bytes


def test_thermal_dense_oom_arithmetic():
    """§5.3: 8,800 buffered curves exceed 2 GiB on one rank."""
    cm = DataCostModel()
    spec = MachineSpec()
    assert 8800 * cm.streamline_memory_nbytes(0) > spec.memory_bytes
    # ...but spread over 15 slaves they fit comfortably.
    per_slave = 8800 // 15
    assert per_slave * cm.streamline_memory_nbytes(200) \
        < 0.25 * spec.memory_bytes


def test_block_read_vs_step_economics():
    """One block read costs thousands of integration steps — the ratio
    behind every I/O-vs-compute tradeoff in the evaluation."""
    cm = DataCostModel()
    spec = MachineSpec()
    read = spec.io_latency + spec.read_service_time(cm.block_nbytes)
    steps_per_read = read / spec.seconds_per_step
    assert steps_per_read > 1.0  # reads dominate single steps
    # And one geometry-laden message is far cheaper than a block read.
    msg = spec.post_time(cm.streamline_wire_nbytes(300))
    assert msg < read


def test_wire_size_monotone_in_geometry():
    cm = DataCostModel()
    sizes = [cm.streamline_wire_nbytes(n) for n in (0, 10, 100, 1000)]
    assert sizes == sorted(sizes)
    assert all(cm.streamline_wire_nbytes(n, compact=True) == sizes[0]
               for n in (0, 10, 100, 1000))
