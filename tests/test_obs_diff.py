"""Run diffing and regression gating."""

import json

import pytest

from repro.obs import DEFAULT_THRESHOLDS, diff_runs, diff_table, regressions
from repro.obs.diff import (
    BENCH_SCHEMA,
    flatten_metrics,
    load_comparable,
    parse_threshold_args,
)


def entry(**over):
    base = {
        "status": "ok",
        "wall_clock": 100.0,
        "io_time": 40.0,
        "comm_time": 10.0,
        "block_efficiency": 0.8,
        "parallel_efficiency": 0.6,
        "critical_path": {"compute": 70.0, "io": 20.0, "comm": 5.0,
                          "idle": 5.0},
    }
    base.update(over)
    return base


def test_flatten_metrics_dots_nested_dicts_and_skips_bools():
    flat = flatten_metrics({"a": 1, "b": {"x": 2.0, "y": "s"},
                            "ok": True, "c": [1, 2]})
    assert flat == {"a": 1.0, "b.x": 2.0}


def test_identical_runs_have_no_regressions():
    rows = diff_runs({"r": entry()}, {"r": entry()})
    assert rows
    assert regressions(rows) == []


def test_wall_clock_regression_past_threshold_is_flagged():
    rows = diff_runs({"r": entry()}, {"r": entry(wall_clock=115.0)})
    reg = regressions(rows)
    assert [r.metric for r in reg] == ["wall_clock"]
    assert reg[0].delta_pct == pytest.approx(15.0)


def test_improvement_is_not_a_regression():
    rows = diff_runs({"r": entry()}, {"r": entry(wall_clock=80.0)})
    assert regressions(rows) == []


def test_efficiency_direction_is_lower_is_worse():
    worse = diff_runs({"r": entry()},
                      {"r": entry(block_efficiency=0.7)})  # -12.5%
    assert [r.metric for r in regressions(worse)] == ["block_efficiency"]
    better = diff_runs({"r": entry()},
                       {"r": entry(block_efficiency=0.9)})
    assert regressions(better) == []


def test_within_threshold_delta_passes():
    rows = diff_runs({"r": entry()}, {"r": entry(wall_clock=105.0)})
    assert regressions(rows) == []  # +5% < the 10% gate


def test_missing_run_regresses():
    rows = diff_runs({"a": entry(), "b": entry()}, {"a": entry()})
    reg = regressions(rows)
    assert [(r.run, r.metric) for r in reg] == [("b", "status")]


def test_status_change_to_oom_regresses():
    rows = diff_runs({"r": entry()}, {"r": entry(status="oom")})
    reg = regressions(rows)
    assert [r.metric for r in reg] == ["status"]
    # The reverse (oom fixed -> ok) is a change, not a regression.
    rows = diff_runs({"r": entry(status="oom")}, {"r": entry()})
    assert regressions(rows) == []


def test_ungated_metrics_are_compared_but_never_gate():
    rows = diff_runs({"r": entry(pingpong_count=10)},
                     {"r": entry(pingpong_count=1000)})
    pp = [r for r in rows if r.metric == "pingpong_count"]
    assert pp and not pp[0].gated and not pp[0].regressed


def test_threshold_overrides():
    rows = diff_runs({"r": entry()}, {"r": entry(wall_clock=105.0)},
                     thresholds=parse_threshold_args(["wall_clock=2"]))
    assert [r.metric for r in regressions(rows)] == ["wall_clock"]


def test_parse_threshold_args_validation():
    assert parse_threshold_args(None) == DEFAULT_THRESHOLDS
    assert parse_threshold_args(["io_time=50"])["io_time"] == 50.0
    with pytest.raises(ValueError):
        parse_threshold_args(["no-equals"])
    with pytest.raises(ValueError):
        parse_threshold_args(["wall_clock=fast"])


def test_diff_table_marks_regressions():
    rows = diff_runs({"r": entry()}, {"r": entry(wall_clock=150.0)})
    table = diff_table(rows)
    assert "REGRESSED" in table
    assert "1 regression(s) past threshold" in table
    clean = diff_table(diff_runs({"r": entry()}, {"r": entry()}))
    assert "no regressions past thresholds" in clean


def test_diff_table_all_rows_shows_ungated():
    rows = diff_runs({"r": entry(pingpong_count=3)},
                     {"r": entry(pingpong_count=3)})
    assert "pingpong_count" not in diff_table(rows)
    assert "pingpong_count" in diff_table(rows, all_rows=True)


# ---------------------------------------------------------------------- #
# Bench-file loading
# ---------------------------------------------------------------------- #

def bench_doc(runs):
    return {"schema": BENCH_SCHEMA, "generated": "20260806",
            "config": {}, "runs": runs}


def test_load_comparable_bench_file(tmp_path):
    path = tmp_path / "BENCH_x.json"
    path.write_text(json.dumps(bench_doc({"r": entry()})))
    assert load_comparable(path) == {"r": entry()}


def test_load_comparable_rejects_bad_schema(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"schema": 42, "runs": {}}))
    with pytest.raises(ValueError):
        load_comparable(path)
    path.write_text(json.dumps({"schema": BENCH_SCHEMA}))
    with pytest.raises(ValueError):
        load_comparable(path)
