"""Parallel sweep executor: determinism, robustness guards, merging."""

import dataclasses
import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro.analysis.experiments import (
    ExperimentKey,
    RunSummary,
    _entry_path,
    _save_entry,
    clear_cache,
    sweep_dataset,
)
from repro.exec import (
    OUTCOME_CRASHED,
    OUTCOME_OK,
    OUTCOME_OOM,
    OUTCOME_TIMEOUT,
    RunSpec,
    SweepExecutor,
    failure_report,
    grid_specs,
    merge_run_entries,
)
from repro.exec.worker import FAULT_ENV

REPO = Path(__file__).resolve().parent.parent

TINY = dict(scale=0.02)


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Point the disk cache at a temp dir and clear memory between
    tests (children inherit the environment, so they share it)."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    import repro.analysis.experiments as exp
    exp._DISK_LOADED = False
    clear_cache()
    yield
    clear_cache()
    exp._DISK_LOADED = False


@pytest.fixture(scope="module")
def bench_mod():
    spec = importlib.util.spec_from_file_location(
        "bench_trajectory_exec", REPO / "benchmarks" / "bench_trajectory.py")
    mod = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("bench_trajectory_exec", mod)
    spec.loader.exec_module(mod)
    return mod


# --------------------------------------------------------------------- #
# Spec plumbing
# --------------------------------------------------------------------- #

def test_run_spec_names():
    spec = RunSpec(dataset="astro", seeding="dense", algorithm="hybrid",
                   n_ranks=8)
    assert spec.name == "astro-dense-hybrid-8"
    probe = dataclasses.replace(spec, tag="oomprobe")
    assert probe.name == "astro-dense-hybrid-8-oomprobe"


def test_grid_specs_order():
    specs = grid_specs(["a", "b"], ["s"], ["x", "y"], [4, 8], scale=0.5)
    names = [s.name for s in specs]
    assert names == ["a-s-x-4", "a-s-x-8", "a-s-y-4", "a-s-y-8",
                     "b-s-x-4", "b-s-x-8", "b-s-y-4", "b-s-y-8"]
    assert all(s.scale == 0.5 for s in specs)


def test_unknown_mode_rejected():
    from repro.exec import run_spec

    with pytest.raises(ValueError, match="unknown run mode"):
        run_spec(RunSpec(dataset="astro", seeding="sparse",
                         algorithm="hybrid", n_ranks=4, mode="nope"))


# --------------------------------------------------------------------- #
# Determinism: jobs=1 vs jobs=4 must merge byte-identically
# --------------------------------------------------------------------- #

def _summary_doc(outcomes):
    runs = {}
    for o in outcomes:
        entry = dataclasses.asdict(o.payload)
        entry.pop("key")
        runs[o.spec.name] = entry
    return json.dumps(runs, sort_keys=True).encode()


def test_four_spec_sweep_parallel_matches_serial():
    """The acceptance contract: the same 4-spec sweep merged from a
    4-process pool is byte-equal to the serial merge."""
    specs = grid_specs(["astro"], ["sparse", "dense"],
                       ["ondemand", "static"], [4], scale=0.02)
    assert len(specs) == 4
    serial = SweepExecutor(jobs=1).run(specs)
    clear_cache(disk=True)  # force the pool to actually re-run
    parallel = SweepExecutor(jobs=4).run(specs)
    assert [o.status for o in serial] == [OUTCOME_OK] * 4
    assert [o.status for o in parallel] == [OUTCOME_OK] * 4
    assert _summary_doc(serial) == _summary_doc(parallel)


def test_sweep_dataset_parallel_matches_serial():
    serial = sweep_dataset("astro", rank_counts=(4,),
                           algorithms=("ondemand",),
                           seedings=("sparse", "dense"), **TINY)
    clear_cache(disk=True)
    parallel = sweep_dataset("astro", rank_counts=(4,),
                             algorithms=("ondemand",),
                             seedings=("sparse", "dense"), jobs=4, **TINY)
    assert serial == parallel  # frozen dataclasses, exact floats


def test_bench_trajectory_jobs_byte_identical(bench_mod, tmp_path):
    """End-to-end: the BENCH snapshot is byte-identical for any
    --jobs value (what CI cmp-gates)."""
    args = ["--scale", "0.05", "--ranks", "4", "--sample-interval", "2.0",
            "--date", "par"]
    assert bench_mod.main(args + ["--out", str(tmp_path / "serial"),
                                  "--jobs", "1"]) == 0
    assert bench_mod.main(args + ["--out", str(tmp_path / "pool"),
                                  "--jobs", "4"]) == 0
    a = (tmp_path / "serial" / "BENCH_par.json").read_bytes()
    b = (tmp_path / "pool" / "BENCH_par.json").read_bytes()
    assert a == b


# --------------------------------------------------------------------- #
# Robustness guards
# --------------------------------------------------------------------- #

def test_per_run_timeout(monkeypatch):
    monkeypatch.setenv(FAULT_ENV, "hang:astro-sparse-ondemand")
    spec = RunSpec(dataset="astro", seeding="sparse",
                   algorithm="ondemand", n_ranks=4, scale=0.02)
    [outcome] = SweepExecutor(jobs=2, timeout=1.0).run([spec])
    assert outcome.status == OUTCOME_TIMEOUT
    assert "1s limit" in outcome.error
    assert failure_report([outcome])


def test_child_crash_does_not_lose_the_sweep(monkeypatch):
    monkeypatch.setenv(FAULT_ENV, "crash:astro-sparse-static")
    specs = grid_specs(["astro"], ["sparse"], ["static", "ondemand"],
                       [4], scale=0.02)
    outcomes = SweepExecutor(jobs=2).run(specs)
    assert [o.spec.name for o in outcomes] == [s.name for s in specs]
    crashed, survived = outcomes
    assert crashed.status == OUTCOME_CRASHED
    assert "exit code 3" in crashed.error
    assert survived.status == OUTCOME_OK
    assert survived.payload.ok
    report = failure_report(outcomes)
    assert "1/2 runs failed" in report
    assert "astro-sparse-static-4: crashed" in report


def test_child_exception_is_reported(monkeypatch):
    monkeypatch.setenv(FAULT_ENV, "raise:astro")
    spec = RunSpec(dataset="astro", seeding="sparse",
                   algorithm="ondemand", n_ranks=4, scale=0.02)
    [outcome] = SweepExecutor(jobs=2).run([spec])
    assert outcome.status == "error"
    assert "injected fault" in outcome.error


def test_real_memoryerror_is_gated_oom_in_child(monkeypatch):
    """The OOM-probe contract: a real MemoryError kills the child, not
    the harness, and surfaces as the gated 'oom' status."""
    monkeypatch.setenv(FAULT_ENV, "memerr:oomprobe")
    probe = RunSpec(dataset="thermal", seeding="dense",
                    algorithm="static", n_ranks=4, scale=0.02,
                    mode="bench", tag="oomprobe", isolate=True,
                    oom_probe=True)
    [outcome] = SweepExecutor(jobs=1).run([probe])  # serial: still a child
    assert outcome.status == OUTCOME_OOM
    assert outcome.payload == {"status": "oom"}
    assert not outcome.failed  # the probe's oom is a result, not a crash


def test_isolated_spec_crash_spares_the_harness(monkeypatch):
    """isolate=True runs in a child even at jobs=1: a hard child death
    cannot take the calling process down."""
    monkeypatch.setenv(FAULT_ENV, "crash:thermal")
    spec = RunSpec(dataset="thermal", seeding="dense", algorithm="static",
                   n_ranks=4, scale=0.02, isolate=True)
    [outcome] = SweepExecutor(jobs=1).run([spec])
    assert outcome.status == OUTCOME_CRASHED


def test_inline_memoryerror_is_gated(monkeypatch):
    monkeypatch.setenv(FAULT_ENV, "memerr:astro")
    spec = RunSpec(dataset="astro", seeding="sparse",
                   algorithm="ondemand", n_ranks=4, scale=0.02)
    [outcome] = SweepExecutor(jobs=1).run([spec])  # inline serial path
    assert outcome.status == OUTCOME_OOM


def test_sweep_dataset_raises_on_failures(monkeypatch):
    monkeypatch.setenv(FAULT_ENV, "crash:astro")
    with pytest.raises(RuntimeError, match="runs failed"):
        sweep_dataset("astro", rank_counts=(4,), algorithms=("ondemand",),
                      seedings=("sparse",), jobs=2, **TINY)


def test_merge_run_entries_statuses():
    from repro.exec import RunOutcome

    ok = RunOutcome(spec=RunSpec(dataset="a", seeding="s", algorithm="x",
                                 n_ranks=4), status=OUTCOME_OK,
                    payload={"status": "ok", "wall_clock": 1.0})
    oom = RunOutcome(spec=RunSpec(dataset="a", seeding="s", algorithm="y",
                                  n_ranks=4, oom_probe=True),
                     status=OUTCOME_OOM, payload={"status": "oom"})
    dead = RunOutcome(spec=RunSpec(dataset="a", seeding="s",
                                   algorithm="z", n_ranks=4),
                      status=OUTCOME_TIMEOUT, error="too slow")
    runs = merge_run_entries([ok, oom, dead])
    assert list(runs) == ["a-s-x-4", "a-s-y-4", "a-s-z-4"]
    assert runs["a-s-x-4"]["wall_clock"] == 1.0
    assert runs["a-s-y-4"] == {"status": "oom"}
    assert runs["a-s-z-4"] == {"status": "timeout"}


# --------------------------------------------------------------------- #
# Atomic per-key cache
# --------------------------------------------------------------------- #

def test_cache_entry_written_atomically(tmp_path):
    key = ExperimentKey(dataset="astro", seeding="sparse",
                        algorithm="hybrid", n_ranks=8, scale=0.5)
    summary = RunSummary(key=key, status="ok", wall_clock=1.25)
    _save_entry(key, summary)
    path = _entry_path(key)
    assert path is not None and path.is_file()
    # No tmp residue: the write went through os.replace.
    assert not list(path.parent.glob("*.tmp.*"))
    blob = json.loads(path.read_text())
    assert blob["key"] == dataclasses.asdict(key)
    assert blob["summary"]["wall_clock"] == 1.25


def test_corrupt_cache_entry_is_ignored():
    import repro.analysis.experiments as exp

    key = ExperimentKey(dataset="astro", seeding="sparse",
                        algorithm="hybrid", n_ranks=8, scale=0.5)
    _save_entry(key, RunSummary(key=key, status="ok", wall_clock=2.0))
    # A torn/corrupt sibling must not poison the load.
    bad = _entry_path(key).parent / "garbage.json"
    bad.write_text("{not json")
    exp._CACHE.clear()
    exp._DISK_LOADED = False
    exp._load_disk_cache()
    assert exp._CACHE[key].wall_clock == 2.0


def test_legacy_whole_file_cache_still_read(tmp_path, monkeypatch):
    import repro.analysis.experiments as exp

    root = tmp_path / "legacy"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(root))
    root.mkdir()
    key = ExperimentKey(dataset="astro", seeding="dense",
                        algorithm="static", n_ranks=16, scale=1.0)
    d = dataclasses.asdict(RunSummary(key=key, status="ok",
                                      wall_clock=7.5))
    d.pop("key")
    (root / "sweep_cache.json").write_text(json.dumps(
        {"version": exp.CACHE_VERSION,
         "runs": [{"key": dataclasses.asdict(key), "summary": d}]}))
    exp._CACHE.clear()
    exp._DISK_LOADED = False
    exp._load_disk_cache()
    assert exp._CACHE[key].wall_clock == 7.5
