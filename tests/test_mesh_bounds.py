"""Tests of axis-aligned box arithmetic."""

import numpy as np
import pytest

from repro.mesh.bounds import Bounds


def test_cube_constructor():
    b = Bounds.cube(-1.0, 2.0)
    assert b.lo == (-1.0, -1.0, -1.0)
    assert b.hi == (2.0, 2.0, 2.0)


def test_degenerate_bounds_rejected():
    with pytest.raises(ValueError):
        Bounds((0, 0, 0), (1, 0, 1))
    with pytest.raises(ValueError):
        Bounds((0, 0, 0), (1, -1, 1))


def test_wrong_dimension_rejected():
    with pytest.raises(ValueError):
        Bounds((0, 0), (1, 1))  # type: ignore[arg-type]


def test_size_center_volume():
    b = Bounds((0.0, 0.0, 0.0), (2.0, 4.0, 8.0))
    assert np.allclose(b.size, [2, 4, 8])
    assert np.allclose(b.center, [1, 2, 4])
    assert b.volume == pytest.approx(64.0)


def test_contains_single_and_batch():
    b = Bounds.cube(0.0, 1.0)
    assert b.contains(np.array([0.5, 0.5, 0.5]))
    assert not b.contains(np.array([1.5, 0.5, 0.5]))
    # Closed bounds: faces are inside.
    assert b.contains(np.array([0.0, 0.0, 0.0]))
    assert b.contains(np.array([1.0, 1.0, 1.0]))
    pts = np.array([[0.5, 0.5, 0.5], [2.0, 0.5, 0.5], [0.0, 1.0, 0.5]])
    assert list(b.contains(pts)) == [True, False, True]


def test_clamp():
    b = Bounds.cube(0.0, 1.0)
    out = b.clamp(np.array([[1.5, -0.5, 0.5]]))
    assert np.allclose(out, [[1.0, 0.0, 0.5]])


def test_normalize_denormalize_roundtrip():
    b = Bounds((-1.0, 0.0, 2.0), (1.0, 4.0, 3.0))
    pts = np.array([[0.0, 2.0, 2.5], [-1.0, 0.0, 2.0]])
    unit = b.normalized(pts)
    assert np.allclose(unit, [[0.5, 0.5, 0.5], [0.0, 0.0, 0.0]])
    assert np.allclose(b.denormalized(unit), pts)


def test_expanded():
    b = Bounds.cube(0.0, 1.0).expanded(0.5)
    assert b.lo == (-0.5, -0.5, -0.5)
    assert b.hi == (1.5, 1.5, 1.5)


def test_intersects():
    a = Bounds.cube(0.0, 1.0)
    assert a.intersects(Bounds.cube(0.5, 2.0))
    # Sharing a face counts as intersecting.
    assert a.intersects(Bounds((1.0, 0.0, 0.0), (2.0, 1.0, 1.0)))
    assert not a.intersects(Bounds.cube(1.5, 2.0))


def test_subbox():
    b = Bounds.cube(0.0, 2.0)
    sub = b.subbox((0.25, 0.25, 0.25), (0.75, 0.75, 0.75))
    assert sub.lo == (0.5, 0.5, 0.5)
    assert sub.hi == (1.5, 1.5, 1.5)


def test_bounds_hashable():
    assert len({Bounds.cube(0, 1), Bounds.cube(0, 1),
                Bounds.cube(0, 2)}) == 2
