"""Ghost-layer sampling: correctness of the one-cell-overlap option.

The paper notes blocks "may or may not have ghost cells for connectivity
purposes".  The default pipeline shares boundary nodes instead; these
tests cover the ghost path for users who want overlap.
"""

import numpy as np
import pytest

from repro.fields import UniformField, sample_block
from repro.fields.library import RigidRotationField
from repro.mesh.bounds import Bounds
from repro.mesh.decomposition import Decomposition


@pytest.fixture
def dec():
    return Decomposition(Bounds.cube(0.0, 1.0), (2, 2, 2), (4, 4, 4))


def test_ghost_data_matches_neighbour_interior(dec):
    """A block's ghost nodes carry exactly the neighbour's interior
    samples (same field, same coordinates)."""
    field = RigidRotationField(domain=Bounds.cube(0.0, 1.0))
    left = sample_block(field, dec.info(dec.linear_id(0, 0, 0)),
                        ghost_layers=1)
    right = sample_block(field, dec.info(dec.linear_id(1, 0, 0)),
                         ghost_layers=0)
    # Left block's +x ghost plane == right block's second node plane.
    # Left ghost data shape: (4+1+2) nodes in x; index -1 is the ghost.
    ghost_plane = left.data[-1, 1:-1, 1:-1]
    neighbour_plane = right.data[1, :, :]
    assert np.allclose(ghost_plane, neighbour_plane, atol=1e-12)


def test_ghost_sampling_interpolates_across_face(dec):
    field = RigidRotationField(domain=Bounds.cube(0.0, 1.0))
    block = sample_block(field, dec.info(0), ghost_layers=2)
    # Query a strip straddling the +x face of the block.
    xs = np.linspace(0.45, 0.55, 11)
    pts = np.stack([xs, np.full_like(xs, 0.2),
                    np.full_like(xs, 0.2)], axis=1)
    out = block.velocity(pts)
    ref = field.evaluate(pts)
    assert np.allclose(out, ref, atol=1e-12)  # linear field: exact


def test_ghost_layers_change_memory_footprint(dec):
    field = UniformField(domain=Bounds.cube(0.0, 1.0))
    g0 = sample_block(field, dec.info(0), ghost_layers=0)
    g2 = sample_block(field, dec.info(0), ghost_layers=2)
    assert g2.nbytes_actual > g0.nbytes_actual
    assert g2.data.shape[0] == g0.data.shape[0] + 4


def test_ghost_block_still_reports_true_bounds(dec):
    field = UniformField(domain=Bounds.cube(0.0, 1.0))
    block = sample_block(field, dec.info(0), ghost_layers=1)
    assert block.bounds == dec.info(0).bounds
    assert block.sample_bounds.lo[0] < block.bounds.lo[0]
    # contains() uses true bounds, not ghost-extended ones.
    just_outside = np.array([0.52, 0.1, 0.1])
    assert not bool(np.all(block.contains(just_outside)))
