"""CLI tests: ``repro slowest`` / ``repro streamline``, pre-provenance
trace compatibility, and the broken-pipe guard across report commands."""

import json
import os
import sys

import pytest

from repro.cli import main

ARGS = ["trace", "astro", "--seeding", "sparse", "--algorithm", "hybrid",
        "--ranks", "8", "--scale", "0.1"]

RUN_NAME = "astro-sparse-hybrid-8"


@pytest.fixture(scope="module")
def trace_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("traces")
    assert main(ARGS + ["--out", str(out)]) == 0
    return out / RUN_NAME


@pytest.fixture(scope="module")
def old_trace_dir(trace_dir, tmp_path_factory):
    """The same trace as recorded before per-streamline provenance:
    no ``seed.*`` markers, no ``sids`` attrs — same schema otherwise."""
    out = tmp_path_factory.mktemp("old") / RUN_NAME
    out.mkdir()
    for name in ("run.json", "samples.jsonl"):
        (out / name).write_bytes((trace_dir / name).read_bytes())
    with open(out / "spans.jsonl", "w", encoding="utf-8") as f:
        for line in (trace_dir / "spans.jsonl").read_text().splitlines():
            d = json.loads(line)
            if d["name"].startswith("seed."):
                continue
            d.get("attrs", {}).pop("sids", None)
            f.write(json.dumps(d, sort_keys=True) + "\n")
    return out


# ---------------------------------------------------------------------- #
# repro slowest / repro streamline
# ---------------------------------------------------------------------- #

def test_slowest_reports_top_seeds(trace_dir, capsys):
    assert main(["slowest", str(trace_dir), "--top", "3"]) == 0
    out = capsys.readouterr().out
    assert "slowest 3 of" in out
    header, *rows = [l for l in out.splitlines() if l][1:]
    for kind in ("advect", "load", "queued", "handoff", "inflight"):
        assert kind in header
    # Dense sparse-astro hybrid runs always ping-pong some seeds.
    assert "ping-pong" in out


def test_slowest_writes_seed_perfetto(trace_dir, tmp_path, capsys):
    perf = tmp_path / "seeds.perfetto.json"
    assert main(["slowest", str(trace_dir), "--top", "2",
                 "--perfetto", str(perf)]) == 0
    capsys.readouterr()
    doc = json.loads(perf.read_text())
    slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert slices and {e["tid"] for e in slices} <= {
        e["args"]["sid"] for e in slices} | {e["tid"] for e in slices}
    assert len({e["tid"] for e in slices}) == 2  # one track per seed


def test_streamline_lifecycle_table(trace_dir, capsys):
    assert main(["streamline", str(trace_dir), "0"]) == 0
    out = capsys.readouterr().out
    assert "streamline 0:" in out
    assert "birth" in out and "termination" in out
    assert "kind" in out


def test_streamline_unknown_sid_exits_2(trace_dir, capsys):
    assert main(["streamline", str(trace_dir), "99999"]) == 2
    assert "no lineage for seed 99999" in capsys.readouterr().err


def test_slowest_missing_dir_exits_2(tmp_path, capsys):
    assert main(["slowest", str(tmp_path / "nope")]) == 2
    assert "not found" in capsys.readouterr().err


# ---------------------------------------------------------------------- #
# Pre-provenance traces stay loadable (trace-schema compatibility)
# ---------------------------------------------------------------------- #

def test_old_trace_analyze_disables_lineage_cleanly(old_trace_dir, capsys):
    assert main(["analyze", str(old_trace_dir)]) == 0
    out = capsys.readouterr().out
    assert "critical path" in out
    assert "no per-seed provenance" in out


def test_old_trace_slowest_explains_and_exits_zero(old_trace_dir, capsys):
    assert main(["slowest", str(old_trace_dir)]) == 0
    assert "no per-seed provenance" in capsys.readouterr().out


def test_old_trace_streamline_exits_2(old_trace_dir, capsys):
    assert main(["streamline", str(old_trace_dir), "0"]) == 2
    assert "no per-seed provenance" in capsys.readouterr().err


def test_old_vs_new_trace_diff_skips_seed_metrics(trace_dir,
                                                  old_trace_dir, capsys):
    # Identical run, one side without seed provenance: the seed_latency
    # metrics exist on one side only, so they are not compared and the
    # diff passes.
    assert main(["diff", str(old_trace_dir), str(trace_dir), "--all"]) == 0
    out = capsys.readouterr().out
    assert "wall_clock" in out
    assert "seed_latency" not in out


def test_new_vs_new_trace_diff_gates_seed_latency(trace_dir, capsys):
    assert main(["diff", str(trace_dir), str(trace_dir), "--all"]) == 0
    out = capsys.readouterr().out
    assert "seed_latency.p95" in out


# ---------------------------------------------------------------------- #
# Broken-pipe guard (`repro ... | head` must exit 0, no warnings)
# ---------------------------------------------------------------------- #

def _run_into_broken_pipe(monkeypatch, argv):
    """Invoke main() with stdout connected to a pipe whose read end is
    already closed — what `repro ... | head -1` leaves behind."""
    r, w = os.pipe()
    os.close(r)
    stream = os.fdopen(w, "w")
    monkeypatch.setattr(sys, "stdout", stream)
    try:
        return main(argv)
    finally:
        monkeypatch.undo()
        try:
            stream.close()
        except OSError:
            pass


def test_analyze_broken_pipe(trace_dir, monkeypatch):
    assert _run_into_broken_pipe(
        monkeypatch, ["analyze", str(trace_dir)]) == 0


def test_slowest_broken_pipe(trace_dir, monkeypatch):
    assert _run_into_broken_pipe(
        monkeypatch, ["slowest", str(trace_dir)]) == 0


def test_streamline_broken_pipe(trace_dir, monkeypatch):
    assert _run_into_broken_pipe(
        monkeypatch, ["streamline", str(trace_dir), "0"]) == 0


def test_diff_broken_pipe(trace_dir, monkeypatch):
    assert _run_into_broken_pipe(
        monkeypatch,
        ["diff", str(trace_dir), str(trace_dir), "--all"]) == 0


def test_trend_broken_pipe(trace_dir, monkeypatch):
    assert _run_into_broken_pipe(
        monkeypatch, ["trend", str(trace_dir), str(trace_dir)]) == 0


def test_trace_broken_pipe(tmp_path, monkeypatch):
    assert _run_into_broken_pipe(
        monkeypatch, ARGS + ["--out", str(tmp_path)]) == 0
