"""Tests of per-rank metrics and the block-efficiency formula."""

import pytest

from repro.sim.metrics import RankMetrics, TimerCategory


def test_charge_routes_to_correct_timer():
    m = RankMetrics(rank=0)
    m.charge(TimerCategory.COMPUTE, 1.0)
    m.charge(TimerCategory.IO, 2.0)
    m.charge(TimerCategory.COMM, 3.0)
    m.charge(TimerCategory.OTHER, 4.0)
    assert m.compute_time == 1.0
    assert m.io_time == 2.0
    assert m.comm_time == 3.0
    assert m.other_time == 4.0
    assert m.busy_time == 10.0


def test_negative_charge_rejected():
    m = RankMetrics(rank=0)
    with pytest.raises(ValueError):
        m.charge(TimerCategory.IO, -0.1)


def test_idle_time():
    m = RankMetrics(rank=0)
    m.charge(TimerCategory.COMPUTE, 3.0)
    assert m.idle_time(10.0) == 7.0
    # Busy beyond wall clock clamps to zero, never negative.
    assert m.idle_time(2.0) == 0.0


def test_block_efficiency_equation_2():
    """E = (B_L - B_P) / B_L, the paper's Eq. (2)."""
    m = RankMetrics(rank=0)
    m.blocks_loaded = 10
    m.blocks_purged = 4
    assert m.block_efficiency == pytest.approx(0.6)


def test_block_efficiency_ideal_when_nothing_purged():
    m = RankMetrics(rank=0)
    m.blocks_loaded = 7
    assert m.block_efficiency == 1.0


def test_block_efficiency_vacuous_when_nothing_loaded():
    assert RankMetrics(rank=0).block_efficiency == 1.0


def test_as_dict_round_trips_all_fields():
    m = RankMetrics(rank=5)
    m.charge(TimerCategory.IO, 1.5)
    m.blocks_loaded = 3
    m.steps = 100
    d = m.as_dict()
    assert d["rank"] == 5
    assert d["io_time"] == 1.5
    assert d["blocks_loaded"] == 3
    assert d["steps"] == 100
    assert set(d) >= {"compute_time", "comm_time", "blocks_purged",
                      "msgs_sent", "bytes_sent", "streamlines_completed"}
