"""Host-side telemetry: HostProbe phases, sampler, plumbing, Recorder."""

import gc
import json
import re
import time

import pytest

from repro.obs import Recorder
from repro.obs.host import (
    HOST_SCHEMA,
    NO_PHASE,
    NULL_PROBE,
    HostProbe,
    PhaseStats,
    activated,
    collapsed_table,
    get_active,
    host_phase,
    host_report,
    load_host_comparable,
    max_rss_kb,
    write_collapsed,
)

#: ``frame;frame;frame count`` — what flamegraph.pl / speedscope parse.
COLLAPSED_LINE = re.compile(r"^\S+(?:;\S+)* \d+$")


def _spin(seconds: float) -> int:
    """Busy-loop so the sampler has something to catch."""
    deadline = time.perf_counter() + seconds
    acc = 0
    while time.perf_counter() < deadline:
        acc += sum(range(200))
    return acc


# --------------------------------------------------------------------- #
# Phase accounting
# --------------------------------------------------------------------- #

def test_phase_accumulates_and_merges_by_label():
    probe = HostProbe()
    with probe:
        for _ in range(3):
            with probe.phase("advect"):
                _spin(0.01)
        with probe.phase("merge"):
            pass
    rows = {ps.label: ps for ps in probe.phases}
    assert set(rows) == {"advect", "merge"}
    assert rows["advect"].count == 3
    assert rows["advect"].wall_s >= 0.03
    assert rows["merge"].count == 1


def test_nested_phases_are_inclusive():
    probe = HostProbe()
    with probe:
        with probe.phase("outer"):
            with probe.phase("inner"):
                _spin(0.02)
    rows = {ps.label: ps for ps in probe.phases}
    assert rows["outer"].wall_s >= rows["inner"].wall_s
    assert rows["inner"].wall_s >= 0.02


def test_gc_pauses_are_counted_and_attributed():
    probe = HostProbe()
    with probe:
        with probe.phase("churn"):
            gc.collect()
            gc.collect()
    [ps] = probe.phases
    assert ps.gc_collections >= 2
    assert ps.gc_pause_s >= 0.0
    doc = probe.to_dict()
    assert doc["gc"]["collections"] >= 2
    # The hook detached on stop: further collections are not counted.
    before = doc["gc"]["collections"]
    gc.collect()
    assert probe.to_dict()["gc"]["collections"] == before
    assert probe._on_gc not in gc.callbacks


def test_tracemalloc_deltas_opt_in():
    probe = HostProbe(trace_malloc=True)
    with probe:
        with probe.phase("alloc"):
            keep = [bytearray(256 * 1024) for _ in range(4)]
    [ps] = probe.phases
    assert ps.alloc_kb > 512  # kept ~1 MiB alive through the phase
    assert ps.alloc_peak_kb >= ps.alloc_kb
    del keep
    import tracemalloc
    assert not tracemalloc.is_tracing()  # probe owned it and stopped it


def test_to_dict_is_json_safe_and_versioned():
    probe = HostProbe()
    with probe:
        with probe.phase("setup"):
            pass
    doc = json.loads(json.dumps(probe.to_dict()))
    assert doc["schema"] == HOST_SCHEMA
    assert doc["wall_s"] >= 0.0
    assert "setup" in doc["phases"]
    assert set(doc["phases"]["setup"]) == {
        "count", "wall_s", "cpu_s", "rss_growth_kb", "alloc_kb",
        "alloc_peak_kb", "gc_collections", "gc_pause_s"}


def test_phase_stats_to_dict_rounding():
    ps = PhaseStats(label="x", count=2, wall_s=1.23456789, cpu_s=0.5)
    d = ps.to_dict()
    assert d["wall_s"] == 1.234568
    assert d["count"] == 2


def test_max_rss_positive_on_unix():
    assert max_rss_kb() > 0


# --------------------------------------------------------------------- #
# Sampling profiler / collapsed stacks
# --------------------------------------------------------------------- #

def test_sampler_collects_collapsed_stacks(tmp_path):
    probe = HostProbe(profile=True, profile_interval=0.001)
    with probe:
        with probe.phase("hot"):
            _spin(0.15)
    assert probe.sample_count > 10
    collapsed = probe.collapsed()
    # Every stack is phase-rooted and flamegraph-parseable.
    hot = {k: v for k, v in collapsed.items() if k.startswith("hot;")}
    assert hot, f"no phase-rooted stacks in {list(collapsed)[:3]}"
    for stack in collapsed:
        assert " " not in stack
    # The busy loop itself dominates the hot-phase samples.
    assert any("_spin" in stack for stack in hot)

    path = tmp_path / "out.collapsed"
    write_collapsed(path, collapsed)
    lines = path.read_text().splitlines()
    assert lines
    for line in lines:
        assert COLLAPSED_LINE.match(line), line
    # Sorted most-sampled first.
    counts = [int(line.rsplit(" ", 1)[1]) for line in lines]
    assert counts == sorted(counts, reverse=True)


def test_samples_outside_phases_use_no_phase_root():
    probe = HostProbe(profile=True, profile_interval=0.001)
    with probe:
        probe.start()
        _spin(0.05)
    assert any(stack.startswith(NO_PHASE.replace(" ", "_"))
               for stack in probe.collapsed())


def test_collapsed_table_renders_and_handles_empty():
    assert "no profiler samples" in collapsed_table({})
    table = collapsed_table({"a;b;c;d;e;f;g": 30, "a;x": 10}, top=1)
    assert "top 1 sampled stacks (40 samples" in table
    assert "75.0%" in table
    assert "a;...;e;f;g" in table  # long stacks are elided


def test_stop_is_idempotent_and_freezes_totals():
    probe = HostProbe(profile=True, profile_interval=0.001)
    with probe.phase("p"):
        _spin(0.02)
    probe.stop()
    wall = probe.to_dict()["wall_s"]
    time.sleep(0.02)
    probe.stop()
    assert probe.to_dict()["wall_s"] == wall
    assert probe._sampler is None


# --------------------------------------------------------------------- #
# Null probe + active-probe plumbing
# --------------------------------------------------------------------- #

def test_null_probe_records_nothing():
    with NULL_PROBE.phase("anything"):
        pass
    assert NULL_PROBE.phases == []
    assert not NULL_PROBE._started
    assert NULL_PROBE.to_dict()["phases"] == {}


def test_activated_scopes_the_active_probe():
    probe = HostProbe()
    assert get_active() is NULL_PROBE
    with activated(probe):
        assert get_active() is probe
        with host_phase("advect"):
            pass
    assert get_active() is NULL_PROBE
    probe.stop()
    assert [ps.label for ps in probe.phases] == ["advect"]
    # Outside any activation, host_phase is a no-op.
    with host_phase("ignored"):
        pass
    assert NULL_PROBE.phases == []


# --------------------------------------------------------------------- #
# Recorder independence (host layer toggles separately)
# --------------------------------------------------------------------- #

def test_recorder_host_layer_independent_of_enabled():
    probe = HostProbe()
    obs = Recorder(enabled=False, host=probe)
    assert obs.host_enabled
    assert not obs.enabled
    with obs.host_phase("advect"):
        pass
    probe.stop()
    assert [ps.label for ps in probe.phases] == ["advect"]
    assert obs.spans == ()  # simulated side stayed silent

    class _Engine:
        now = 0.0
        observer = None

    eng = _Engine()
    obs.bind(eng)
    assert eng.observer is None  # disabled recorder installs no hook


def test_recorder_defaults_to_null_probe():
    obs = Recorder(enabled=True)
    assert obs.host is NULL_PROBE
    assert not obs.host_enabled
    with obs.host_phase("x"):
        pass
    assert NULL_PROBE.phases == []


# --------------------------------------------------------------------- #
# host_report / load_host_comparable
# --------------------------------------------------------------------- #

def test_host_report_labels_machine_dependence():
    probe = HostProbe()
    with probe:
        with probe.phase("advect"):
            pass
    text = host_report(probe.to_dict())
    assert "real machine time" in text
    assert "never part of BENCH snapshots" in text
    assert "advect" in text
    assert "total" in text


def test_load_host_comparable_flattens_phases(tmp_path):
    probe = HostProbe()
    with probe:
        with probe.phase("advect"):
            _spin(0.01)
    doc = {"host_schema": HOST_SCHEMA,
           "scenario": {"name": "astro-sparse-hybrid-8"},
           "host": probe.to_dict()}
    path = tmp_path / "p.json"
    path.write_text(json.dumps(doc))
    table = load_host_comparable(path)
    assert list(table) == ["astro-sparse-hybrid-8"]
    flat = table["astro-sparse-hybrid-8"]
    assert flat["wall_s"] > 0.0
    assert "phase.advect.wall_s" in flat
    assert "gc.collections" in flat
    # Simulated metrics never appear in the host comparison.
    assert not any(k.startswith("wall_clock") for k in flat)


def test_load_host_comparable_rejects_non_profiles(tmp_path):
    path = tmp_path / "bench.json"
    path.write_text(json.dumps({"schema": 3, "runs": {}}))
    with pytest.raises(ValueError, match="not a host profile"):
        load_host_comparable(path)
