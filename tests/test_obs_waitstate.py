"""Idle-time attribution: wait reasons, blocked_since wiring, and the
per-rank reconciliation busy + waits + drain == wall."""

import pytest

from repro.core.driver import run_streamlines
from repro.obs import Recorder, WaitStates
from repro.sim.engine import Engine, Signal, Sleep, Wait


def test_waitstates_accumulate_and_report():
    w = WaitStates()
    w.add(0, "message", 1.0)
    w.add(0, "message", 0.5)
    w.add(1, "slave_status", 2.0)
    assert w.of(0) == {"message": 1.5}
    assert w.total(0) == pytest.approx(1.5)
    assert w.total(2) == 0.0
    assert w.reasons() == ["message", "slave_status"]
    assert w.counts == {0: 2, 1: 1}
    with pytest.raises(ValueError):
        w.add(0, "message", -0.1)


def test_engine_attributes_wait_to_reason_and_blocked_since():
    engine = Engine()
    rec = Recorder(enabled=True)
    rec.bind(engine)
    sig = Signal("work")

    def waiter():
        yield Sleep(0.5)  # blocked_since must be the Wait time, not 0
        yield Wait(sig, reason="custom")

    def firer():
        yield Sleep(2.0)
        sig.fire()

    engine.spawn("w", waiter(), rank=0)
    engine.spawn("f", firer(), rank=1)
    engine.run()
    assert rec.waits.of(0) == {"custom": pytest.approx(1.5)}
    (span,) = [s for s in rec.spans if s.name == "wait.custom"]
    assert span.rank == 0
    assert span.start == pytest.approx(0.5)  # Process.blocked_since
    assert span.end == pytest.approx(2.0)


def test_untagged_wait_and_rankless_process():
    engine = Engine()
    rec = Recorder(enabled=True)
    rec.bind(engine)
    sig = Signal("s")

    def waiter():
        yield sig  # bare-signal shorthand -> default reason

    def anon():
        yield Wait(sig, reason="ignored")  # rank=None: not attributed

    def firer():
        yield Sleep(1.0)
        sig.fire()

    engine.spawn("w", waiter(), rank=3)
    engine.spawn("a", anon())
    engine.spawn("f", firer(), rank=1)
    engine.run()
    assert rec.waits.of(3) == {"wait": pytest.approx(1.0)}
    assert rec.waits.totals.keys() == {3}


def test_disabled_recorder_installs_no_observer():
    engine = Engine()
    rec = Recorder(enabled=False)
    rec.bind(engine)
    assert engine.observer is None


def test_engine_event_count_and_pending_events():
    engine = Engine()
    assert engine.pending_events == 0

    def prog():
        yield Sleep(1.0)

    engine.spawn("p", prog())
    assert engine.pending_events == 1
    engine.run()
    assert engine.pending_events == 0
    assert engine.event_count == 2  # initial step + sleep resume


@pytest.mark.parametrize("algorithm", ["static", "ondemand", "hybrid"])
def test_wait_states_reconcile_with_idle_time(small_problem, small_machine,
                                              algorithm):
    """Per rank: busy + attributed waits + drain tail == wall (1e-9)."""
    obs = Recorder(enabled=True)
    result = run_streamlines(small_problem, algorithm=algorithm,
                             machine=small_machine, obs=obs)
    assert result.ok
    wall = result.wall_clock
    for m in result.rank_metrics:
        drain = max(0.0, wall - m.finish_time)
        attributed = obs.waits.total(m.rank) + drain
        assert attributed == pytest.approx(m.idle_time(wall), abs=1e-9), \
            f"rank {m.rank} ({algorithm})"
        assert m.busy_time + attributed == pytest.approx(wall, abs=1e-9)


def test_hybrid_wait_reasons_match_roles(small_problem, small_machine):
    obs = Recorder(enabled=True)
    result = run_streamlines(small_problem, algorithm="hybrid",
                             machine=small_machine, obs=obs)
    assert result.ok
    reasons = set(obs.waits.reasons())
    assert "master_assignment" in reasons  # starving slaves
    assert "slave_status" in reasons       # parked master (rank 0)
    assert "slave_status" in obs.waits.of(0)
