"""Tests of the regular block decomposition."""

import numpy as np
import pytest

from repro.mesh.bounds import Bounds
from repro.mesh.decomposition import Decomposition


@pytest.fixture
def dec():
    return Decomposition(Bounds.cube(0.0, 1.0), (4, 2, 2), (8, 8, 8))


def test_block_count(dec):
    assert dec.n_blocks == 16
    assert len(dec) == 16
    assert len(list(dec)) == 16


def test_linear_id_roundtrip(dec):
    for bid in range(dec.n_blocks):
        i, j, k = dec.block_coords(bid)
        assert dec.linear_id(i, j, k) == bid


def test_linear_id_x_fastest(dec):
    assert dec.linear_id(0, 0, 0) == 0
    assert dec.linear_id(1, 0, 0) == 1
    assert dec.linear_id(0, 1, 0) == 4
    assert dec.linear_id(0, 0, 1) == 8


def test_out_of_range_rejected(dec):
    with pytest.raises(IndexError):
        dec.linear_id(4, 0, 0)
    with pytest.raises(IndexError):
        dec.block_coords(16)
    with pytest.raises(IndexError):
        dec.info(-1)


def test_invalid_construction():
    with pytest.raises(ValueError):
        Decomposition(Bounds.cube(0, 1), (0, 1, 1), (4, 4, 4))
    with pytest.raises(ValueError):
        Decomposition(Bounds.cube(0, 1), (2, 2, 2), (4, 0, 4))


def test_blocks_tile_the_domain(dec):
    """Union of block volumes equals the domain volume; blocks disjoint."""
    total = sum(info.bounds.volume for info in dec)
    assert total == pytest.approx(dec.domain.volume)
    infos = list(dec)
    for a in range(4):  # spot check disjoint interiors
        for b in range(a + 1, 4):
            ia, ib = infos[a].bounds, infos[b].bounds
            overlap_lo = np.maximum(ia.lo_array, ib.lo_array)
            overlap_hi = np.minimum(ia.hi_array, ib.hi_array)
            interior = np.all(overlap_hi - overlap_lo > 1e-12)
            assert not interior


def test_block_bounds(dec):
    info = dec.info(dec.linear_id(1, 0, 1))
    assert np.allclose(info.bounds.lo_array, [0.25, 0.0, 0.5])
    assert np.allclose(info.bounds.hi_array, [0.5, 0.5, 1.0])


def test_node_dims_and_cells(dec):
    info = dec.info(0)
    assert info.node_dims == (9, 9, 9)
    assert info.cell_dims == (8, 8, 8)
    assert info.n_cells == 512
    assert info.n_nodes == 729


def test_node_coordinates_cover_block(dec):
    info = dec.info(3)
    xs, ys, zs = info.node_coordinates()
    assert xs[0] == pytest.approx(info.bounds.lo[0])
    assert xs[-1] == pytest.approx(info.bounds.hi[0])
    assert len(xs) == info.node_dims[0]


def test_neighbouring_blocks_share_boundary_nodes(dec):
    a = dec.info(dec.linear_id(0, 0, 0))
    b = dec.info(dec.linear_id(1, 0, 0))
    xa = a.node_coordinates()[0]
    xb = b.node_coordinates()[0]
    assert xa[-1] == pytest.approx(xb[0])


def test_locate_center_of_each_block(dec):
    for info in dec:
        assert dec.locate(info.bounds.center) == info.block_id


def test_locate_outside_domain(dec):
    assert dec.locate(np.array([2.0, 0.5, 0.5])) == -1
    assert dec.locate(np.array([-0.1, 0.5, 0.5])) == -1


def test_locate_domain_faces_are_inside(dec):
    # Upper domain corner clamps into the last block.
    assert dec.locate(np.array([1.0, 1.0, 1.0])) == dec.n_blocks - 1
    assert dec.locate(np.array([0.0, 0.0, 0.0])) == 0


def test_locate_interior_face_goes_to_upper_block(dec):
    # Point exactly on the x-face between blocks 0 and 1.
    assert dec.locate(np.array([0.25, 0.1, 0.1])) == 1


def test_locate_batch(dec):
    pts = np.array([[0.1, 0.1, 0.1], [0.9, 0.9, 0.9], [3.0, 0.0, 0.0]])
    out = dec.locate(pts)
    assert out.shape == (3,)
    assert out[0] == 0
    assert out[1] == dec.n_blocks - 1
    assert out[2] == -1


def test_global_cell_dims(dec):
    assert dec.global_cell_dims == (32, 16, 16)


def test_locate_matches_info_bounds_randomly(dec):
    rng = np.random.default_rng(0)
    pts = rng.uniform(size=(200, 3))
    bids = dec.locate(pts)
    for p, bid in zip(pts, bids):
        assert dec.info(int(bid)).bounds.contains(p)
