"""Reduced-scale integration tests of the paper's evaluation shapes.

The full reproduction runs in benchmarks/ (one per figure); these tests
assert the same qualitative findings at a scale small enough for the
regular test suite.  Tolerances are loose: the claims are ordinal (who
wins, who fails), exactly like reading the paper's log-scale plots.
"""

import pytest

from repro.analysis.experiments import run_experiment
from repro.analysis.scenarios import make_problem

SCALE = 0.1
RANKS = 16


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    import repro.analysis.experiments as exp
    exp._DISK_LOADED = False
    exp.clear_cache()
    yield
    exp.clear_cache()


def run(dataset, seeding, algorithm, n_ranks=RANKS):
    return run_experiment(dataset, seeding, algorithm, n_ranks,
                          scale=SCALE)


# --------------------------------------------------------------------- #
# Astro (Figures 5-8)
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("seeding", ["sparse", "dense"])
def test_astro_ondemand_spends_most_io_time(seeding):
    """Figure 6: 'Load On Demand ... spends an order of magnitude more
    time in I/O for both seed point initial conditions.'"""
    ondemand = run("astro", seeding, "ondemand")
    static = run("astro", seeding, "static")
    hybrid = run("astro", seeding, "hybrid")
    assert ondemand.io_time > 2.0 * hybrid.io_time
    assert ondemand.io_time > 2.0 * static.io_time


@pytest.mark.parametrize("seeding", ["sparse", "dense"])
def test_astro_static_block_efficiency_ideal(seeding):
    """Figure 7: 'Static Allocation performs ideally, loading each block
    once and never purging.'"""
    static = run("astro", seeding, "static")
    assert static.block_efficiency == 1.0
    assert static.blocks_purged == 0


@pytest.mark.parametrize("seeding", ["sparse", "dense"])
def test_astro_ondemand_least_block_efficient(seeding):
    ondemand = run("astro", seeding, "ondemand")
    hybrid = run("astro", seeding, "hybrid")
    assert ondemand.block_efficiency <= hybrid.block_efficiency + 1e-9


def test_astro_static_communicates_more_than_hybrid():
    """Figure 8 (sparse): Static posts far more communication.  At high
    rank counts static owns few blocks per rank so nearly every crossing
    ships; at this reduced scale we assert same-order comparability and
    leave the strict inequality to the full-scale benchmark."""
    static = run("astro", "sparse", "static")
    hybrid = run("astro", "sparse", "hybrid")
    # At 16 ranks static still owns 32 blocks and absorbs most crossings
    # internally, so only same-order comparability is asserted here.
    assert static.comm_time > 0.2 * hybrid.comm_time
    assert static.bytes_sent > 0


def test_astro_dense_static_compute_imbalanced():
    """Figure 5 (dense): dense seeds concentrate Static's work."""
    static = run("astro", "dense", "static")
    hybrid = run("astro", "dense", "hybrid")
    assert static.ok and hybrid.ok
    assert static.parallel_efficiency < hybrid.parallel_efficiency
    assert hybrid.wall_clock < static.wall_clock


# --------------------------------------------------------------------- #
# Fusion (Figures 9-12)
# --------------------------------------------------------------------- #
def test_fusion_static_and_hybrid_comparable():
    """Figure 9: 'Static Allocation and Hybrid Master/Slave perform
    nearly identically for both initial conditions.'"""
    static = run("fusion", "sparse", "static")
    hybrid = run("fusion", "sparse", "hybrid")
    ratio = max(static.wall_clock, hybrid.wall_clock) \
        / min(static.wall_clock, hybrid.wall_clock)
    assert ratio < 4.0  # same ballpark on a log plot


def test_fusion_dense_static_comm_high():
    """Figure 11: dense seeds make Static's communication very high.
    The strict inequality emerges at high rank counts (few owned blocks
    per rank); at this scale assert same order and heavy geometry."""
    static = run("fusion", "dense", "static")
    hybrid = run("fusion", "dense", "hybrid")
    assert static.comm_time > 0.5 * hybrid.comm_time
    assert static.bytes_sent > 10 * static.messages  # geometry-dominated


def test_fusion_ondemand_more_io(seeding="sparse"):
    ondemand = run("fusion", seeding, "ondemand")
    static = run("fusion", seeding, "static")
    assert ondemand.io_time > static.io_time


# --------------------------------------------------------------------- #
# Thermal (Figures 13-16 / §5.3)
# --------------------------------------------------------------------- #
def test_thermal_dense_static_out_of_memory():
    """§5.3: 'the Static Allocation algorithm ran out of memory and was
    unable to run' — all seeds land on one block owner.  Needs enough
    seeds to exceed one rank's 2 GiB, hence the larger scale."""
    static = run_experiment("thermal", "dense", "static", RANKS,
                            scale=0.5)
    assert not static.ok
    assert static.status == "oom"


def test_thermal_dense_others_complete_and_ondemand_leads():
    """§5.3: Load On Demand outperforms Hybrid in the dense case."""
    ondemand = run_experiment("thermal", "dense", "ondemand", RANKS,
                              scale=0.5)
    hybrid = run_experiment("thermal", "dense", "hybrid", RANKS,
                            scale=0.5)
    assert ondemand.ok and hybrid.ok
    assert ondemand.wall_clock <= hybrid.wall_clock * 1.1


def test_thermal_sparse_all_complete_similarly():
    """Figure 13 (sparse): all three algorithms are comparable."""
    walls = [run("thermal", "sparse", a).wall_clock
             for a in ("static", "ondemand", "hybrid")]
    assert max(walls) / min(walls) < 6.0


def test_thermal_dense_needs_little_io():
    """§5.3: 'very little data needs to be read off disk.'"""
    dense = run("thermal", "dense", "ondemand")
    sparse = run("thermal", "sparse", "ondemand")
    assert dense.blocks_loaded < 4 * sparse.blocks_loaded
    # Compute dominates I/O in the dense case.
    assert dense.compute_time > dense.io_time
