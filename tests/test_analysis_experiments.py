"""Tests of the experiment harness, caching, and figure tables."""

import pytest

from repro.analysis.experiments import (
    ExperimentKey,
    RunSummary,
    clear_cache,
    run_experiment,
    sweep_dataset,
)
from repro.analysis.report import (
    FIGURE_NUMBERS,
    figure_table,
    format_series,
    format_value,
)
from repro.analysis.scenarios import DATASETS, SEEDINGS, make_problem


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Point the disk cache at a temp dir and clear memory between tests."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    import repro.analysis.experiments as exp
    exp._DISK_LOADED = False
    clear_cache()
    yield
    clear_cache()


TINY = dict(scale=0.02)  # a handful of seeds per scenario


def test_make_problem_validation():
    with pytest.raises(ValueError):
        make_problem("nope", "sparse")
    with pytest.raises(ValueError):
        make_problem("astro", "nope")
    with pytest.raises(ValueError):
        make_problem("astro", "sparse", scale=0)


def test_all_scenarios_construct():
    for dataset in DATASETS:
        for seeding in SEEDINGS:
            p = make_problem(dataset, seeding, scale=0.02)
            assert p.n_seeds >= 4
            assert p.n_blocks == 512


def test_run_experiment_caches_in_memory():
    a = run_experiment("astro", "sparse", "ondemand", 4, **TINY)
    b = run_experiment("astro", "sparse", "ondemand", 4, **TINY)
    assert a is b  # exact cache hit


def test_run_experiment_disk_cache_roundtrip(tmp_path):
    import repro.analysis.experiments as exp

    a = run_experiment("astro", "sparse", "ondemand", 4, **TINY)
    # New process simulation: wipe memory, keep disk.
    exp._CACHE.clear()
    exp._DISK_LOADED = False
    b = run_experiment("astro", "sparse", "ondemand", 4, **TINY)
    assert b.wall_clock == a.wall_clock
    assert b.io_time == a.io_time
    assert b.key == a.key


def test_metric_accessor():
    s = run_experiment("astro", "sparse", "ondemand", 4, **TINY)
    assert s.metric("wall_clock") == s.wall_clock
    assert s.metric("block_efficiency") == s.block_efficiency
    with pytest.raises(ValueError):
        s.metric("nonsense")


def test_sweep_covers_grid():
    out = sweep_dataset("astro", scale=0.02, rank_counts=(4, 8),
                        algorithms=("ondemand",), seedings=("sparse",))
    assert len(out) == 2
    assert {s.key.n_ranks for s in out} == {4, 8}


def test_figure_table_renders():
    summaries = sweep_dataset("astro", scale=0.02, rank_counts=(4,),
                              algorithms=("ondemand", "static"),
                              seedings=("sparse",))
    table = figure_table("astro", summaries, "wall_clock")
    assert "Figure 5" in table
    assert "ondemand (sparse)" in table
    assert "static (sparse)" in table


def test_format_value_oom():
    assert format_value("wall_clock", None) == "OOM"
    assert format_value("block_efficiency", 0.5) == "0.500"


def test_format_series_groups_and_sorts():
    summaries = sweep_dataset("astro", scale=0.02, rank_counts=(8, 4),
                              algorithms=("ondemand",),
                              seedings=("sparse",))
    series = format_series(summaries, "io_time")
    pts = series[("ondemand", "sparse")]
    assert [r for r, _ in pts] == [4, 8]
    with pytest.raises(ValueError):
        format_series(summaries, "bogus")


def test_every_figure_number_mapped():
    assert set(FIGURE_NUMBERS.values()) == set(range(5, 17))
    for dataset in DATASETS:
        metrics = [m for (d, m) in FIGURE_NUMBERS if d == dataset]
        assert len(metrics) == 4
