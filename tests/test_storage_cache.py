"""Tests of the LRU block cache and its accounting."""

import numpy as np
import pytest

from repro.fields import UniformField, sample_block
from repro.mesh.bounds import Bounds
from repro.mesh.decomposition import Decomposition
from repro.storage.cache import LRUBlockCache


@pytest.fixture
def blocks():
    field = UniformField(domain=Bounds.cube(0.0, 1.0))
    dec = Decomposition(field.domain, (2, 2, 2), (3, 3, 3))
    return [sample_block(field, dec.info(i)) for i in range(8)]


def test_capacity_validation():
    with pytest.raises(ValueError):
        LRUBlockCache(0)


def test_put_get_hit_miss(blocks):
    cache = LRUBlockCache(4)
    assert cache.get(0) is None
    assert cache.misses == 1
    cache.put(blocks[0])
    assert cache.get(0) is blocks[0]
    assert cache.hits == 1
    assert cache.loads == 1
    assert len(cache) == 1


def test_lru_eviction_order(blocks):
    cache = LRUBlockCache(2)
    cache.put(blocks[0])
    cache.put(blocks[1])
    evicted = cache.put(blocks[2])
    assert [b.block_id for b in evicted] == [0]
    assert cache.resident_ids == [1, 2]
    assert cache.purges == 1


def test_get_refreshes_lru_order(blocks):
    cache = LRUBlockCache(2)
    cache.put(blocks[0])
    cache.put(blocks[1])
    cache.get(0)  # 0 becomes most recent
    evicted = cache.put(blocks[2])
    assert [b.block_id for b in evicted] == [1]


def test_peek_does_not_touch(blocks):
    cache = LRUBlockCache(2)
    cache.put(blocks[0])
    cache.put(blocks[1])
    assert cache.peek(0) is blocks[0]
    assert cache.hits == 0
    evicted = cache.put(blocks[2])
    assert [b.block_id for b in evicted] == [0]  # peek did not refresh


def test_double_put_rejected(blocks):
    cache = LRUBlockCache(4)
    cache.put(blocks[0])
    with pytest.raises(ValueError):
        cache.put(blocks[0])


def test_block_efficiency(blocks):
    cache = LRUBlockCache(2)
    for b in blocks[:6]:
        cache.put(b)
    # 6 loads, 4 purges -> E = 2/6.
    assert cache.block_efficiency == pytest.approx(2.0 / 6.0)


def test_block_efficiency_vacuous():
    assert LRUBlockCache(2).block_efficiency == 1.0


def test_explicit_evict(blocks):
    cache = LRUBlockCache(4)
    cache.put(blocks[0])
    out = cache.evict(0)
    assert out is blocks[0]
    assert cache.purges == 1
    assert cache.evict(0) is None
    assert cache.purges == 1  # absent evict does not count


def test_clear(blocks):
    cache = LRUBlockCache(8)
    for b in blocks[:3]:
        cache.put(b)
    evicted = cache.clear()
    assert len(evicted) == 3
    assert cache.purges == 3
    assert len(cache) == 0


def test_contains(blocks):
    cache = LRUBlockCache(2)
    cache.put(blocks[3])
    assert 3 in cache
    assert 4 not in cache
