"""Tests of the Hill's-vortex and Lorenz reference fields."""

import numpy as np
import pytest

from repro.fields import HillsVortexField, LorenzField
from repro.integrate import IntegratorConfig, integrate_single
from repro.mesh.bounds import Bounds
from repro.mesh.decomposition import Decomposition


def test_hills_velocity_continuous_at_sphere():
    f = HillsVortexField()
    rng = np.random.default_rng(0)
    d = rng.normal(size=(40, 3))
    d /= np.linalg.norm(d, axis=1, keepdims=True)
    inner = f.evaluate(d * (f.radius - 1e-7))
    outer = f.evaluate(d * (f.radius + 1e-7))
    assert np.allclose(inner, outer, atol=1e-5)


def test_hills_stream_function_is_invariant():
    """u . grad(psi) = 0 everywhere (checked by finite differences)."""
    f = HillsVortexField()
    rng = np.random.default_rng(1)
    pts = rng.uniform(-0.8, 0.8, size=(150, 3))
    eps = 1e-6
    grad = np.zeros_like(pts)
    for ax in range(3):
        d = np.zeros(3)
        d[ax] = eps
        grad[:, ax] = (f.stream_function(pts + d)
                       - f.stream_function(pts - d)) / (2 * eps)
    v = f.evaluate(pts)
    assert np.max(np.abs(np.einsum("kc,kc->k", v, grad))) < 1e-8


def test_hills_psi_conserved_along_integrated_streamline():
    """The analytic invariant holds along an actually integrated curve
    (direct analytic evaluation, fine adaptive steps)."""
    from repro.integrate.base import Integrator
    from repro.integrate.dopri5 import Dopri5

    f = HillsVortexField()
    cfg = IntegratorConfig(rtol=1e-9, atol=1e-11, h_init=0.005,
                           h_max=0.01)
    d = Dopri5(cfg.rtol, cfg.atol)
    pos = np.array([[0.25, 0.0, 0.1]])
    psi0 = f.stream_function(pos)[0]
    h = np.array([cfg.h_init])
    drift = 0.0
    for _ in range(400):
        new_pos, err = d.attempt_steps(f.evaluate, pos, h)
        if err[0] <= 1.0:
            pos = new_pos
            drift = max(drift, abs(f.stream_function(pos)[0] - psi0))
        h = Integrator.adapt_h(h, err, d.order, cfg)
    assert drift < 1e-6


def test_hills_axis_is_regular():
    f = HillsVortexField()
    v = f.evaluate(np.array([[0.0, 0.0, 0.3], [0.0, 0.0, 0.0]]))
    assert np.all(np.isfinite(v))
    assert np.allclose(v[:, :2], 0.0)  # axisymmetric: no swirl on axis


def test_hills_far_field_approaches_stream():
    f = HillsVortexField(radius=0.2, stream_speed=2.0)
    v = f.evaluate(np.array([[0.0, 0.0, 0.95]]))
    assert v[0, 2] == pytest.approx(2.0, rel=0.05)


def test_hills_validation():
    with pytest.raises(ValueError):
        HillsVortexField(radius=0.0)


def test_lorenz_fixed_points():
    """The Lorenz system's equilibria are zeros of the field."""
    f = LorenzField()
    b, r = f.beta, f.rho
    c = np.sqrt(b * (r - 1))
    fixed = np.array([[0.0, 0.0, 0.0],
                      [c, c, r - 1.0],
                      [-c, -c, r - 1.0]]) / f.scale
    v = f.evaluate(fixed)
    assert np.allclose(v, 0.0, atol=1e-12)


def test_lorenz_trajectories_stay_bounded_on_attractor():
    """Integrated through the sampled pipeline, Lorenz trajectories stay
    in the domain box for a long time (the attractor is inside)."""
    f = LorenzField()
    dec = Decomposition(f.domain, (4, 4, 4), (8, 8, 8))
    seeds = np.array([[0.1, 0.1, 1.0], [0.2, -0.1, 0.8]])
    cfg = IntegratorConfig(max_steps=400, h_max=0.01, rtol=1e-6,
                           atol=1e-8)
    lines = integrate_single(f, dec, seeds, cfg)
    for l in lines:
        assert l.steps > 100  # did not exit immediately
        assert np.all(np.isfinite(l.vertices()))


def test_lorenz_sensitive_dependence():
    """Two nearby seeds separate (chaos) — distinguishes Lorenz from a
    regular field at the same speed scale."""
    f = LorenzField()
    dec = Decomposition(f.domain, (2, 2, 2), (10, 10, 10))
    eps = 1e-4
    seeds = np.array([[0.1, 0.1, 1.0], [0.1 + eps, 0.1, 1.0]])
    cfg = IntegratorConfig(max_steps=600, h_init=0.005, h_max=0.005,
                           rtol=1e-7, atol=1e-9)
    lines = integrate_single(f, dec, seeds, cfg)
    end_gap = np.linalg.norm(lines[0].position - lines[1].position)
    assert end_gap > 10 * eps
