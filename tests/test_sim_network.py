"""Tests of the simulated network and comm endpoints."""

import pytest

from repro.sim.cluster import Cluster
from repro.sim.engine import Sleep
from repro.sim.machine import MachineSpec
from repro.sim.metrics import RankMetrics


def make_cluster(n=2, **overrides):
    return Cluster(MachineSpec(n_ranks=n, **overrides))


def test_send_and_recv_roundtrip():
    cluster = make_cluster()
    got = []

    def sender(ctx):
        yield from ctx.comm.send(1, "test", {"x": 1}, 100)

    def receiver(ctx):
        msgs = yield from ctx.comm.recv_wait()
        got.extend(msgs)

    cluster.engine.spawn("s", sender(cluster.context(0)))
    cluster.engine.spawn("r", receiver(cluster.context(1)))
    cluster.run()
    assert len(got) == 1
    assert got[0].payload == {"x": 1}
    assert got[0].src == 0 and got[0].dst == 1
    assert got[0].kind == "test"
    assert got[0].nbytes == 100


def test_send_to_self_rejected():
    cluster = make_cluster()

    def prog(ctx):
        yield from ctx.comm.send(0, "x", None, 10)

    cluster.engine.spawn("p", prog(cluster.context(0)))
    with pytest.raises(Exception):
        cluster.run()


def test_message_arrival_time_includes_latency_and_bandwidth():
    spec = MachineSpec(n_ranks=2, comm_latency=1.0, comm_bandwidth=100.0,
                       comm_post_overhead=0.0, comm_post_per_byte=0.0)
    cluster = Cluster(spec)
    arrival = []

    def sender(ctx):
        yield from ctx.comm.send(1, "x", None, 200)  # 2s wire + 1s latency

    def receiver(ctx):
        yield from ctx.comm.recv_wait()
        arrival.append(ctx.now)

    cluster.engine.spawn("s", sender(cluster.context(0)))
    cluster.engine.spawn("r", receiver(cluster.context(1)))
    cluster.run()
    assert arrival == [pytest.approx(3.0)]


def test_sender_nic_serializes_messages():
    """Two back-to-back sends share the sender's NIC: the second departs
    only after the first's wire time."""
    spec = MachineSpec(n_ranks=3, comm_latency=0.0, comm_bandwidth=100.0,
                       comm_post_overhead=0.0, comm_post_per_byte=0.0)
    cluster = Cluster(spec)
    arrivals = {}

    def sender(ctx):
        yield from ctx.comm.send(1, "x", None, 100)  # 1s wire
        yield from ctx.comm.send(2, "x", None, 100)  # queued behind

    def receiver(ctx):
        yield from ctx.comm.recv_wait()
        arrivals[ctx.rank] = ctx.now

    cluster.engine.spawn("s", sender(cluster.context(0)))
    cluster.engine.spawn("r1", receiver(cluster.context(1)))
    cluster.engine.spawn("r2", receiver(cluster.context(2)))
    cluster.run()
    assert arrivals[1] == pytest.approx(1.0)
    assert arrivals[2] == pytest.approx(2.0)


def test_post_time_charged_to_comm_timer():
    spec = MachineSpec(n_ranks=2, comm_post_overhead=0.5,
                       comm_post_per_byte=0.001)
    cluster = Cluster(spec)

    def sender(ctx):
        yield from ctx.comm.send(1, "x", None, 1000)

    def receiver(ctx):
        yield from ctx.comm.recv_wait()

    cluster.engine.spawn("s", sender(cluster.context(0)))
    cluster.engine.spawn("r", receiver(cluster.context(1)))
    cluster.run()
    # Sender: overhead + 1000 * per_byte = 0.5 + 1.0.
    assert cluster.metrics[0].comm_time == pytest.approx(1.5)
    # Receiver: one drain overhead.
    assert cluster.metrics[1].comm_time == pytest.approx(0.5)
    assert cluster.metrics[0].msgs_sent == 1
    assert cluster.metrics[0].bytes_sent == 1000
    assert cluster.metrics[1].msgs_received == 1


def test_try_recv_does_not_block():
    cluster = make_cluster()
    out = []

    def prog(ctx):
        msgs = yield from ctx.comm.try_recv()
        out.append(len(msgs))

    def other(ctx):
        yield Sleep(0.0)

    cluster.engine.spawn("p", prog(cluster.context(0)))
    cluster.engine.spawn("o", other(cluster.context(1)))
    cluster.run()
    assert out == [0]


def test_recv_wait_drains_all_pending():
    cluster = make_cluster()
    got = []

    def sender(ctx):
        for i in range(5):
            yield from ctx.comm.send(1, "n", i, 10)

    def receiver(ctx):
        yield Sleep(10.0)  # let everything arrive
        msgs = yield from ctx.comm.recv_wait()
        got.append([m.payload for m in msgs])

    cluster.engine.spawn("s", sender(cluster.context(0)))
    cluster.engine.spawn("r", receiver(cluster.context(1)))
    cluster.run()
    assert got == [[0, 1, 2, 3, 4]]


def test_messages_from_one_sender_preserve_order():
    cluster = make_cluster()
    seen = []

    def sender(ctx):
        for i in range(20):
            yield from ctx.comm.send(1, "seq", i, 64)

    def receiver(ctx):
        while len(seen) < 20:
            msgs = yield from ctx.comm.recv_wait()
            seen.extend(m.payload for m in msgs)

    cluster.engine.spawn("s", sender(cluster.context(0)))
    cluster.engine.spawn("r", receiver(cluster.context(1)))
    cluster.run()
    assert seen == list(range(20))


def test_network_totals():
    cluster = make_cluster()

    def sender(ctx):
        yield from ctx.comm.send(1, "a", None, 100)
        yield from ctx.comm.send(1, "b", None, 200)

    def receiver(ctx):
        total = 0
        while total < 2:
            msgs = yield from ctx.comm.recv_wait()
            total += len(msgs)

    cluster.engine.spawn("s", sender(cluster.context(0)))
    cluster.engine.spawn("r", receiver(cluster.context(1)))
    cluster.run()
    assert cluster.network.total_messages == 2
    assert cluster.network.total_bytes == 300


def test_negative_message_size_rejected():
    cluster = make_cluster()

    def prog(ctx):
        yield from ctx.comm.send(1, "x", None, -5)

    cluster.engine.spawn("p", prog(cluster.context(0)))
    with pytest.raises(Exception):
        cluster.run()
