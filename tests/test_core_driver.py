"""Cross-algorithm integration tests: equivalence, determinism, OOM."""

import numpy as np
import pytest

import repro
from repro.core.driver import run_streamlines
from repro.core.results import STATUS_OK, STATUS_OOM
from repro.fields import ThermalHydraulicsField
from repro.integrate import IntegratorConfig, integrate_single
from repro.seeding import circle_seeds
from repro.sim.machine import MachineSpec
from repro.sim.trace import Trace
from repro.storage.costmodel import DataCostModel

ALGOS = ("static", "ondemand", "hybrid")


@pytest.fixture(scope="module")
def reference(small_problem_module):
    problem = small_problem_module
    return integrate_single(problem.field, problem.decomposition,
                            problem.seeds, problem.integ)


@pytest.fixture(scope="module")
def small_problem_module():
    # Module-scoped twin of the conftest fixture (for the reference run).
    from repro.fields import SupernovaField
    from repro.seeding import sparse_random_seeds
    field = SupernovaField()
    seeds = sparse_random_seeds(
        field.domain.subbox((0.15, 0.15, 0.15), (0.85, 0.85, 0.85)),
        24, seed=42)
    return repro.ProblemSpec(
        field=field, seeds=seeds,
        blocks_per_axis=(4, 4, 4), cells_per_block=(6, 6, 6),
        integ=IntegratorConfig(max_steps=120, rtol=1e-5, atol=1e-7))


@pytest.mark.parametrize("algorithm", ALGOS)
def test_all_streamlines_accounted_for(small_problem_module, algorithm):
    result = run_streamlines(small_problem_module, algorithm=algorithm,
                             machine=MachineSpec(n_ranks=8))
    assert result.ok
    assert len(result.streamlines) == small_problem_module.n_seeds
    assert [l.sid for l in result.streamlines] \
        == list(range(small_problem_module.n_seeds))
    assert all(l.status.terminated for l in result.streamlines)


@pytest.mark.parametrize("algorithm", ALGOS)
def test_geometry_identical_to_serial_reference(
        small_problem_module, reference, algorithm):
    """Parallelization must not change the numerics — every algorithm
    produces bit-identical curves to the serial reference."""
    result = run_streamlines(small_problem_module, algorithm=algorithm,
                             machine=MachineSpec(n_ranks=8))
    for ref, line in zip(reference, result.streamlines):
        assert ref.status == line.status
        assert ref.steps == line.steps
        assert np.allclose(ref.vertices(), line.vertices(), atol=1e-13)


@pytest.mark.parametrize("algorithm", ALGOS)
def test_deterministic_across_runs(small_problem_module, algorithm):
    a = run_streamlines(small_problem_module, algorithm=algorithm,
                        machine=MachineSpec(n_ranks=8))
    b = run_streamlines(small_problem_module, algorithm=algorithm,
                        machine=MachineSpec(n_ranks=8))
    assert a.wall_clock == b.wall_clock
    assert a.io_time == b.io_time
    assert a.comm_time == b.comm_time
    assert a.messages_sent == b.messages_sent
    assert a.blocks_loaded == b.blocks_loaded


@pytest.mark.parametrize("algorithm", ALGOS)
def test_rank_count_does_not_change_results(small_problem_module,
                                            algorithm):
    a = run_streamlines(small_problem_module, algorithm=algorithm,
                        machine=MachineSpec(n_ranks=4))
    b = run_streamlines(small_problem_module, algorithm=algorithm,
                        machine=MachineSpec(n_ranks=12))
    for la, lb in zip(a.streamlines, b.streamlines):
        assert la.status == lb.status
        assert np.allclose(la.vertices(), lb.vertices(), atol=1e-13)


def test_unknown_algorithm_rejected(small_problem_module):
    with pytest.raises(ValueError, match="unknown algorithm"):
        run_streamlines(small_problem_module, algorithm="magic")


def test_out_of_domain_seeds_terminate_immediately(small_problem_module):
    problem = small_problem_module.with_seeds(np.array([
        [0.5, 0.5, 0.5],
        [5.0, 5.0, 5.0],   # outside
        [-2.0, 0.0, 0.0],  # outside
    ]))
    for algorithm in ALGOS:
        result = run_streamlines(problem, algorithm=algorithm,
                                 machine=MachineSpec(n_ranks=4))
        assert result.ok
        assert result.streamlines[1].status.value == "out_of_bounds"
        assert result.streamlines[2].status.value == "out_of_bounds"
        assert len(result.streamlines[1].vertices()) == 1


def test_static_ooms_on_dense_thermal_seeds():
    """Paper §5.3: Static Allocation runs out of memory when every seed
    lands on one owner; the other two algorithms complete."""
    field = ThermalHydraulicsField()
    cy, cz = field.inlet_centers[0]
    problem = repro.ProblemSpec(
        field=field,
        seeds=circle_seeds((0.06, cy, cz), 0.02, 600),
        blocks_per_axis=(4, 4, 4), cells_per_block=(6, 6, 6),
        integ=IntegratorConfig(max_steps=40, rtol=1e-4, atol=1e-6))
    # 600 curves x 512 KiB = 300 MiB, over a 192 MiB budget: the one
    # rank owning the inlet blocks cannot hold them all.
    machine = MachineSpec(n_ranks=8, memory_bytes=192 << 20,
                          cache_blocks=3)
    static = run_streamlines(problem, algorithm="static", machine=machine)
    assert static.status == STATUS_OOM
    assert static.oom_rank is not None
    assert "streamline" in static.oom_reason

    # Load On Demand splits curves evenly; the hybrid algorithm caps any
    # slave's load at N_O (kept below what 192 MiB can hold).
    from repro.core.config import HybridConfig
    for algorithm, hybrid in (("ondemand", None),
                              ("hybrid", HybridConfig(overload_limit=40))):
        result = run_streamlines(problem, algorithm=algorithm,
                                 machine=machine, hybrid=hybrid)
        assert result.ok, f"{algorithm} should survive dense seeding"


def test_wall_clock_positive_and_metrics_consistent(small_problem_module):
    result = run_streamlines(small_problem_module, algorithm="hybrid",
                             machine=MachineSpec(n_ranks=6))
    assert result.wall_clock > 0
    assert result.compute_time > 0
    assert result.blocks_loaded >= 1
    assert 0.0 <= result.block_efficiency <= 1.0
    assert result.total_steps > 0
    assert 0.0 < result.parallel_efficiency <= 1.0
    summary = result.summary()
    assert summary["status"] == STATUS_OK
    assert summary["streamlines"] == small_problem_module.n_seeds


def test_trace_records_events(small_problem_module):
    trace = Trace(enabled=True)
    run_streamlines(small_problem_module, algorithm="static",
                    machine=MachineSpec(n_ranks=4), trace=trace)
    counts = trace.counts()
    assert counts.get("block_load", 0) > 0
    assert counts.get("advect_pool", 0) > 0


def test_single_rank_static_and_ondemand(small_problem_module):
    """n_ranks=1 degenerates to serial out-of-core computation."""
    for algorithm in ("static", "ondemand"):
        result = run_streamlines(small_problem_module, algorithm=algorithm,
                                 machine=MachineSpec(n_ranks=1))
        assert result.ok
        assert result.comm_time == 0.0
        assert result.messages_sent == 0


def test_hybrid_requires_two_ranks(small_problem_module):
    with pytest.raises(ValueError):
        run_streamlines(small_problem_module, algorithm="hybrid",
                        machine=MachineSpec(n_ranks=1))
