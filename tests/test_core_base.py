"""Tests of shared worker machinery: partitioning, ownership, memory."""

import numpy as np
import pytest

from repro.core.base import Worker, owner_of_block, partition_contiguous
from repro.core.problem import ProblemSpec
from repro.fields import UniformField
from repro.integrate.streamline import Streamline
from repro.mesh.bounds import Bounds
from repro.sim.cluster import Cluster
from repro.sim.machine import MachineSpec
from repro.sim.memory import SimOutOfMemory
from repro.storage.costmodel import DataCostModel
from repro.storage.store import BlockStore


# --------------------------------------------------------------------- #
# partition_contiguous / owner_of_block
# --------------------------------------------------------------------- #
def test_partition_covers_everything_disjointly():
    for n_items in (1, 7, 16, 100):
        for n_parts in (1, 3, 7, 16):
            seen = []
            for part in range(n_parts):
                seen.extend(partition_contiguous(n_items, n_parts, part))
            assert seen == list(range(n_items))


def test_partition_is_balanced():
    sizes = [len(partition_contiguous(100, 7, p)) for p in range(7)]
    assert max(sizes) - min(sizes) <= 1
    # First parts get the remainder.
    assert sizes == sorted(sizes, reverse=True)


def test_partition_range_validation():
    with pytest.raises(ValueError):
        partition_contiguous(10, 4, 4)


def test_owner_matches_partition():
    for n_blocks, n_ranks in ((512, 64), (512, 512), (16, 3), (10, 10)):
        for rank in range(n_ranks):
            for bid in partition_contiguous(n_blocks, n_ranks, rank):
                assert owner_of_block(bid, n_blocks, n_ranks) == rank


def test_owner_more_ranks_than_blocks():
    # 4 blocks over 8 ranks: blocks 0..3 owned by ranks 0..3.
    for bid in range(4):
        assert owner_of_block(bid, 4, 8) == bid


def test_owner_bounds():
    with pytest.raises(ValueError):
        owner_of_block(512, 512, 64)


# --------------------------------------------------------------------- #
# Worker block/memory accounting
# --------------------------------------------------------------------- #
def make_worker(cache_blocks=4, memory=1 << 30):
    field = UniformField(domain=Bounds.cube(0.0, 1.0))
    problem = ProblemSpec(
        field=field, seeds=np.array([[0.5, 0.5, 0.5]]),
        blocks_per_axis=(2, 2, 2), cells_per_block=(3, 3, 3),
        cost_model=DataCostModel(modelled_cells_per_block=1000))
    spec = MachineSpec(n_ranks=1, cache_blocks=cache_blocks,
                       memory_bytes=memory)
    cluster = Cluster(spec)
    store = BlockStore(field, problem.decomposition)
    return Worker(cluster.context(0), problem, store), cluster


def drive(cluster, gen):
    """Run one generator to completion inside the simulator."""
    out = {}

    def prog():
        out["value"] = yield from gen

    cluster.engine.spawn("t", prog())
    cluster.run()
    return out["value"]


def test_ensure_block_charges_io_once():
    worker, cluster = make_worker()
    drive(cluster, worker.ensure_block(0))
    io_after_first = cluster.metrics[0].io_time
    assert io_after_first > 0
    assert cluster.metrics[0].blocks_loaded == 1

    cluster2 = Cluster(MachineSpec(n_ranks=1))
    # Re-fetch from cache: no further I/O charged.
    def refetch():
        yield from worker.ensure_block(0)
    worker.ctx.engine.call_later(0, lambda: None)
    block = worker.cache.get(0)
    assert block is not None
    assert worker.ctx.metrics.blocks_loaded == 1


def test_ensure_block_eviction_frees_memory():
    worker, cluster = make_worker(cache_blocks=2)

    def prog():
        for bid in range(4):
            yield from worker.ensure_block(bid)

    cluster.engine.spawn("t", prog())
    cluster.run()
    m = cluster.metrics[0]
    assert m.blocks_loaded == 4
    assert m.blocks_purged == 2
    # Memory holds exactly 2 blocks.
    assert worker.ctx.memory.usage_by_label()["block"] \
        == 2 * worker.cost.block_nbytes


def test_line_memory_lifecycle():
    worker, _ = make_worker()
    line = Streamline(sid=0, seed=np.array([0.5, 0.5, 0.5]))
    worker.own_line(line)
    base = worker.ctx.memory.in_use
    assert base == worker.cost.streamline_memory_nbytes(0)
    line.append_segment(np.zeros((5, 3)))
    worker.grow_line(line)
    assert worker.ctx.memory.in_use \
        == worker.cost.streamline_memory_nbytes(5)
    worker.release_line(line)
    assert worker.ctx.memory.in_use == 0


def test_double_own_rejected():
    worker, _ = make_worker()
    line = Streamline(sid=0, seed=np.array([0.5, 0.5, 0.5]))
    worker.own_line(line)
    with pytest.raises(RuntimeError):
        worker.own_line(line)


def test_release_unowned_rejected():
    worker, _ = make_worker()
    line = Streamline(sid=0, seed=np.array([0.5, 0.5, 0.5]))
    with pytest.raises(RuntimeError):
        worker.release_line(line)
    with pytest.raises(RuntimeError):
        worker.grow_line(line)


def test_own_line_can_oom():
    worker, _ = make_worker(memory=400_000)  # < one streamline overhead
    line = Streamline(sid=0, seed=np.array([0.5, 0.5, 0.5]))
    with pytest.raises(SimOutOfMemory):
        worker.own_line(line)


# --------------------------------------------------------------------- #
# Worker pool cache
# --------------------------------------------------------------------- #
def load_blocks(worker, cluster, bids):
    def prog():
        for bid in bids:
            yield from worker.ensure_block(bid)
    cluster.engine.spawn("load", prog())
    cluster.run()


def test_pool_cache_reuses_pool_for_same_block_set():
    worker, cluster = make_worker()
    load_blocks(worker, cluster, [0, 1])
    blocks = [worker.cache.get(0), worker.cache.get(1)]
    pool_a = worker._pool_for(blocks)
    pool_b = worker._pool_for(blocks)
    assert pool_a is pool_b
    # A different subset is a different pool.
    pool_c = worker._pool_for(blocks[:1])
    assert pool_c is not pool_a


def test_pool_cache_invalidated_on_eviction():
    worker, cluster = make_worker(cache_blocks=2)
    load_blocks(worker, cluster, [0, 1])
    blocks = [worker.cache.get(0), worker.cache.get(1)]
    pool = worker._pool_for(blocks)
    # Loading two more blocks evicts 0 and 1 -> cached pool dropped.
    load_blocks(worker, cluster, [2, 3])
    assert not worker._pool_cache
    # Reloading block 0 yields a new object; a rebuilt pool must not
    # serve the stale stacked data.
    load_blocks(worker, cluster, [0, 1])
    fresh = [worker.cache.get(0), worker.cache.get(1)]
    pool2 = worker._pool_for(fresh)
    assert pool2 is not pool
    assert all(p is b for p, b in zip(pool2.blocks, fresh))


def test_pool_cache_identity_check_rejects_stale_members():
    worker, cluster = make_worker()
    load_blocks(worker, cluster, [0, 1])
    blocks = [worker.cache.get(0), worker.cache.get(1)]
    pool = worker._pool_for(blocks)
    # Simulate an eviction path that bypassed ensure_block: same id,
    # different resident object (BlockStore memoizes, so build a true
    # clone directly from the field).
    from repro.fields import sample_block

    clone = sample_block(worker.problem.field,
                         worker.problem.decomposition.info(0))
    worker.cache.evict(0)
    worker.cache.put(clone)
    pool2 = worker._pool_for([clone, blocks[1]])
    assert pool2 is not pool
    assert pool2.blocks[0] is clone


def test_pool_cache_is_bounded():
    from repro.core.base import POOL_CACHE_ENTRIES

    worker, cluster = make_worker(cache_blocks=8)
    load_blocks(worker, cluster, list(range(8)))
    loaded = [worker.cache.get(b) for b in range(8)]
    for n in range(1, 9):
        worker._pool_for(loaded[:n])
    assert len(worker._pool_cache) <= POOL_CACHE_ENTRIES


def test_cache_capacity_derived_from_memory_when_unset():
    field = UniformField(domain=Bounds.cube(0.0, 1.0))
    problem = ProblemSpec(
        field=field, seeds=np.array([[0.5, 0.5, 0.5]]),
        blocks_per_axis=(2, 2, 2), cells_per_block=(3, 3, 3),
        cost_model=DataCostModel(modelled_cells_per_block=1_000_000))
    spec = MachineSpec(n_ranks=1, cache_blocks=None,
                       memory_bytes=480_000_000)
    cluster = Cluster(spec)
    worker = Worker(cluster.context(0), problem,
                    BlockStore(field, problem.decomposition))
    # 0.25 * 480 MB / 12 MB = 10 blocks.
    assert worker.cache.capacity == 10
