"""Tests of the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    import repro.analysis.experiments as exp
    exp._DISK_LOADED = False
    exp.clear_cache()
    yield
    exp.clear_cache()


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_scenarios_command(capsys):
    assert main(["scenarios", "--scale", "0.05"]) == 0
    out = capsys.readouterr().out
    for dataset in ("astro", "fusion", "thermal"):
        assert dataset in out
    assert "hybrid" in out


def test_run_command(capsys):
    assert main(["run", "--dataset", "astro", "--seeding", "sparse",
                 "--algorithm", "ondemand", "--ranks", "4",
                 "--scale", "0.02"]) == 0
    out = capsys.readouterr().out
    assert "wall clock" in out
    assert "block efficiency" in out


def test_run_command_reports_oom(capsys):
    assert main(["run", "--dataset", "thermal", "--seeding", "dense",
                 "--algorithm", "static", "--ranks", "8",
                 "--scale", "0.6"]) == 0
    out = capsys.readouterr().out
    assert "OUT OF MEMORY" in out


def test_figure_command(capsys):
    assert main(["figure", "6", "--dataset", "astro", "--scale", "0.02",
                 "--ranks", "4"]) == 0
    out = capsys.readouterr().out
    assert "Figure 6" in out
    assert "I/O" in out


def test_figure_command_wrong_number(capsys):
    assert main(["figure", "9", "--dataset", "astro",
                 "--scale", "0.02"]) == 2
    assert "not a astro figure" in capsys.readouterr().err


def test_recommend_command(capsys):
    assert main(["recommend", "--seeds", "22000", "--spread",
                 "0.004"]) == 0
    out = capsys.readouterr().out
    assert "ondemand" in out


def test_recommend_hybrid_for_unknown_flow(capsys):
    assert main(["recommend", "--seeds", "5000", "--spread", "0.5"]) == 0
    assert "hybrid" in capsys.readouterr().out
