"""Bit-exactness guards for the fused hot-path kernels.

The advection compute stack (cached :class:`BlockPool`, fused
:class:`PoolSampler`, workspace DOPRI5, the small-batch scalar rounds)
is pure optimization: every simulated result must be bit-for-bit what
the straightforward NumPy implementation produces.  These tests pin that
contract from four angles:

* a **golden-trajectory** fixture recorded before the overhaul,
* the fused sampler against a **naive reference** implementation,
* the **scalar** small-batch path against the array path,
* **fresh-pool-per-call** against cached-pool reuse (what the worker's
  pool cache changes).

Regenerating ``tests/data/golden_pool_trajectories.npz`` (only needed if
the *simulated* semantics intentionally change) re-runs the three cases
below at the same configs and stores seeds plus final state and
geometry; see ``_replay``'s driver loop for the exact schedule::

    PYTHONPATH=src python tests/data/make_golden_pool_trajectories.py
"""

import numpy as np
import pytest

import repro.integrate.pooled as pooled_mod
from repro.fields import SupernovaField, sample_field
from repro.fields.library import RigidRotationField
from repro.integrate.config import IntegratorConfig
from repro.integrate.dopri5 import Dopri5
from repro.integrate.fixed import make_integrator
from repro.integrate.pooled import BlockPool, advance_pool
from repro.integrate.streamline import make_streamlines
from repro.mesh.bounds import Bounds
from repro.mesh.decomposition import Decomposition
from pathlib import Path

GOLDEN = Path(__file__).parent / "data" / "golden_pool_trajectories.npz"

CASES = {
    "rot_dopri5": dict(
        field="rot", counts=(4, 4, 4), dims=(8, 8, 8),
        integ=lambda: Dopri5(1e-5, 1e-7),
        cfg=IntegratorConfig(max_steps=220, h_max=0.03,
                             rtol=1e-5, atol=1e-7)),
    "astro_dopri5": dict(
        field="astro", counts=(8, 8, 8), dims=(8, 8, 8),
        integ=lambda: Dopri5(1e-5, 1e-7),
        cfg=IntegratorConfig(max_steps=300, h_max=0.045,
                             rtol=1e-5, atol=1e-7)),
    "rot_rk4": dict(
        field="rot", counts=(4, 4, 4), dims=(8, 8, 8),
        integ=lambda: make_integrator("rk4"),
        cfg=IntegratorConfig(max_steps=150, h_max=0.02)),
}


def _make_field(name):
    if name == "rot":
        return RigidRotationField(domain=Bounds.cube(-1.0, 1.0))
    return SupernovaField()


def _replay(case, seeds, fresh_pool_per_call=False):
    """Advance ``seeds`` to completion; returns lines + final state."""
    field = _make_field(case["field"])
    dec = Decomposition(field.domain, case["counts"], case["dims"])
    blocks = list(sample_field(field, dec).values())
    pool = BlockPool(blocks)
    integ = case["integ"]()
    lines = make_streamlines(seeds)
    for line in lines:
        line.block_id = int(dec.locate(line.position))
    active = list(lines)
    for _ in range(400):
        if not active:
            break
        if fresh_pool_per_call:
            pool = BlockPool(blocks)
        res = advance_pool(active, pool, field.domain, dec, integ,
                           case["cfg"], round_limit=24)
        active = res.in_pool + list(res.exited)
    return lines


def _state(lines):
    return {
        "status": np.array([l.status.value for l in lines]),
        "steps": np.array([l.steps for l in lines]),
        "h": np.array([l.h for l in lines]),
        "time": np.array([l.time for l in lines]),
        "pos": np.stack([l.position for l in lines]),
        "verts": np.concatenate([l.vertices() for l in lines]),
        "vcounts": np.array([l.n_vertices for l in lines]),
    }


# --------------------------------------------------------------------- #
# Golden trajectories (recorded with the pre-overhaul kernels)
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("name", sorted(CASES))
def test_golden_trajectories_bit_identical(name):
    gold = np.load(GOLDEN)
    lines = _replay(CASES[name], gold[f"{name}_seeds"])
    for key, val in _state(lines).items():
        ref = gold[f"{name}_{key}"]
        assert ref.shape == val.shape, (name, key)
        assert np.array_equal(ref, val), \
            f"{name}:{key} diverged from pre-overhaul kernels"


# --------------------------------------------------------------------- #
# Cached pool reuse vs a fresh BlockPool every call
# --------------------------------------------------------------------- #
def test_cached_pool_equals_fresh_pool_per_call():
    rng = np.random.default_rng(7)
    seeds = rng.uniform(-0.85, 0.85, size=(19, 3))
    case = CASES["rot_dopri5"]
    cached = _state(_replay(case, seeds))
    fresh = _state(_replay(case, seeds, fresh_pool_per_call=True))
    for key in cached:
        assert np.array_equal(cached[key], fresh[key]), key


# --------------------------------------------------------------------- #
# Fused sampler vs naive reference
# --------------------------------------------------------------------- #
def _naive_sample(pool, slots, pts):
    """The original straight-line trilinear implementation."""
    nx, ny, nz = pool.dims
    g = (pts - pool.lo[slots]) * pool.scale[slots]
    g = np.minimum(g, pool.node_max)
    g = np.maximum(g, 0.0)
    icell = g.astype(np.int64)
    icell = np.minimum(
        icell, np.array([nx - 2, ny - 2, nz - 2], dtype=np.int64))
    t = g - icell
    s = 1.0 - t
    sx, sy, sz = s[:, 0], s[:, 1], s[:, 2]
    tx, ty, tz = t[:, 0], t[:, 1], t[:, 2]
    # ((x * y) * z) grouping, corners in z-fastest order.
    w = np.stack([
        (sx * sy) * sz, (sx * sy) * tz, (sx * ty) * sz, (sx * ty) * tz,
        (tx * sy) * sz, (tx * sy) * tz, (tx * ty) * sz, (tx * ty) * tz,
    ], axis=1)
    base = (icell[:, 0] * (ny * nz) + icell[:, 1] * nz + icell[:, 2]
            + pool.slot_base[slots])
    idx = base[:, None] + pool.offsets[None, :]
    corners = pool.flat[idx]
    return np.einsum("ke,kec->kc", w, corners)


@pytest.fixture(scope="module")
def sampler_pool():
    field = RigidRotationField(domain=Bounds.cube(-1.0, 1.0))
    dec = Decomposition(field.domain, (2, 2, 2), (5, 5, 5))
    pool = BlockPool(list(sample_field(field, dec).values()))
    return dec, pool


@pytest.mark.parametrize("k", [1, 2, 4, 33])
def test_fused_sampler_matches_naive(sampler_pool, k):
    dec, pool = sampler_pool
    rng = np.random.default_rng(k)
    pts = rng.uniform(-0.99, 0.99, size=(k, 3))
    slots = np.array([pool.slot_of[int(b)]
                      for b in dec.locate_many(pts)], dtype=np.int64)
    f = pool.sampler().bind(slots)
    assert np.array_equal(f(pts), _naive_sample(pool, slots, pts))


def test_fused_sampler_degenerate_and_boundary_points(sampler_pool):
    """Nodes, faces, corners, and clipped out-of-block points.

    These land exactly on cell boundaries (degenerate weights 0/1) and
    past the clip limits, the paths where truncation vs floor and clip
    ordering could silently diverge.
    """
    dec, pool = sampler_pool
    pts = np.array([
        [0.0, 0.0, 0.0],        # interior block corner (face ownership)
        [-1.0, -1.0, -1.0],     # domain corner
        [1.0, 1.0, 1.0],        # top domain corner (clamped last cell)
        [0.5, 0.0, -0.25],      # on an interior face
        [-0.5, -0.5, -0.5],     # block center, exact node
        [0.999999999, 0.0, 0.0],
    ])
    slots = np.array([pool.slot_of[int(b)]
                      for b in dec.locate_many(pts)], dtype=np.int64)
    f = pool.sampler().bind(slots)
    assert np.array_equal(f(pts), _naive_sample(pool, slots, pts))
    # Points outside their bound block's box: the sampler clips into the
    # block (same value as the reference clip).
    far = pts + 3.7
    assert np.array_equal(f(far), _naive_sample(pool, slots, far))


def test_sampler_out_buffer_matches_fresh(sampler_pool):
    dec, pool = sampler_pool
    rng = np.random.default_rng(99)
    pts = rng.uniform(-0.9, 0.9, size=(6, 3))
    slots = np.array([pool.slot_of[int(b)]
                      for b in dec.locate_many(pts)], dtype=np.int64)
    f = pool.sampler().bind(slots)
    buf = np.full((6, 3), np.nan)
    res = f(pts, out=buf)
    assert res is buf
    assert np.array_equal(buf, f(pts))


# --------------------------------------------------------------------- #
# Scalar small-batch path vs array path
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("k", [1, 2, 4])
def test_scalar_rounds_match_array_path(monkeypatch, k):
    rng = np.random.default_rng(k + 40)
    seeds = rng.uniform(-0.9, 0.9, size=(k, 3))
    case = CASES["astro_dopri5"]
    with_scalar = _state(_replay(case, seeds))
    monkeypatch.setattr(pooled_mod, "_SCALAR_MAX_K", -1)
    without_scalar = _state(_replay(case, seeds))
    for key in with_scalar:
        assert np.array_equal(with_scalar[key], without_scalar[key]), key


def test_scalar_ctx_gated_by_pool_size(monkeypatch):
    field = RigidRotationField(domain=Bounds.cube(-1.0, 1.0))
    dec = Decomposition(field.domain, (2, 2, 2), (5, 5, 5))
    pool = BlockPool(list(sample_field(field, dec).values()))
    monkeypatch.setattr(pooled_mod, "_SCALAR_CTX_MAX_NODES", 1)
    assert pool.scalar_ctx() is None  # too large: no Python mirror
    pool2 = BlockPool(pool.blocks)
    monkeypatch.undo()
    ctx = pool2.scalar_ctx()
    assert ctx is not None
    assert ctx is pool2.scalar_ctx()  # cached


# --------------------------------------------------------------------- #
# Batched locate
# --------------------------------------------------------------------- #
def test_locate_many_matches_scalar_locate():
    field = RigidRotationField(domain=Bounds.cube(-1.0, 1.0))
    dec = Decomposition(field.domain, (3, 2, 4), (4, 4, 4))
    rng = np.random.default_rng(5)
    pts = rng.uniform(-1.4, 1.4, size=(64, 3))  # includes outside points
    batched = dec.locate_many(pts)
    for p, bid in zip(pts, batched):
        assert int(dec.locate(p)) == int(bid)


def test_locate_many_boundaries():
    field = RigidRotationField(domain=Bounds.cube(-1.0, 1.0))
    dec = Decomposition(field.domain, (2, 2, 2), (4, 4, 4))
    pts = np.array([
        [0.0, 0.0, 0.0],     # interior faces -> higher-indexed block
        [1.0, 1.0, 1.0],     # top corner stays in the last block
        [-1.0, -1.0, -1.0],  # bottom corner in block 0
        [1.0000001, 0.0, 0.0],  # outside
    ])
    bids = dec.locate_many(pts)
    assert bids[0] == 7
    assert bids[1] == 7
    assert bids[2] == 0
    assert bids[3] == -1
