"""Tests of ProblemSpec construction and derived properties."""

import numpy as np
import pytest

import repro
from repro.core.problem import ProblemSpec
from repro.fields import TokamakField, UniformField
from repro.mesh.bounds import Bounds
from repro.storage.costmodel import DataCostModel


def make(seeds=None, **kw):
    field = UniformField(domain=Bounds.cube(0.0, 1.0))
    if seeds is None:
        seeds = np.array([[0.5, 0.5, 0.5], [0.1, 0.1, 0.1]])
    defaults = dict(field=field, seeds=seeds,
                    blocks_per_axis=(2, 2, 2), cells_per_block=(4, 4, 4))
    defaults.update(kw)
    return ProblemSpec(**defaults)


def test_seed_validation():
    with pytest.raises(ValueError):
        make(seeds=np.zeros((0, 3)))
    with pytest.raises(ValueError):
        make(seeds=np.zeros((3, 2)))


def test_seeds_are_frozen_copies():
    src = np.array([[0.5, 0.5, 0.5]])
    p = make(seeds=src)
    src[0, 0] = 0.9
    assert p.seeds[0, 0] == 0.5  # copied
    with pytest.raises(ValueError):
        p.seeds[0, 0] = 0.1  # read-only


def test_integrator_name_validated():
    with pytest.raises(ValueError):
        make(integrator="rk7")
    assert make(integrator="euler").integrator == "euler"


def test_derived_decomposition_and_locator_cached():
    p = make()
    assert p.decomposition is p.decomposition
    assert p.locator is p.locator
    assert p.n_blocks == 8


def test_seed_blocks():
    p = make(seeds=np.array([[0.1, 0.1, 0.1], [0.9, 0.9, 0.9],
                             [5.0, 5.0, 5.0]]))
    bids = p.seed_blocks
    assert bids[0] == 0
    assert bids[1] == 7
    assert bids[2] == -1


def test_with_seeds_replaces_only_seeds():
    p = make()
    q = p.with_seeds(np.array([[0.2, 0.2, 0.2]]))
    assert q.n_seeds == 1
    assert q.blocks_per_axis == p.blocks_per_axis
    assert q.field is p.field


def test_describe_mentions_key_facts():
    field = TokamakField()
    p = ProblemSpec(field=field,
                    seeds=np.array([[field.major_radius, 0.0, 0.0]]),
                    blocks_per_axis=(4, 4, 4), cells_per_block=(6, 6, 6),
                    name="demo")
    text = p.describe()
    assert "demo" in text
    assert "64 blocks" in text
    assert "dopri5" in text


def test_cost_model_plumbed():
    cm = DataCostModel(modelled_cells_per_block=500)
    p = make(cost_model=cm)
    assert p.cost_model.block_nbytes == 500 * 12
