"""Tests of the shared-filesystem contention model."""

import pytest

from repro.sim.cluster import Cluster
from repro.sim.machine import MachineSpec


def test_single_read_time():
    spec = MachineSpec(n_ranks=1, io_latency=1.0, io_bandwidth=100.0)
    cluster = Cluster(spec)
    elapsed = []

    def prog(ctx):
        t = yield from ctx.read_block_bytes(200)
        elapsed.append(t)

    cluster.engine.spawn("p", prog(cluster.context(0)))
    cluster.run()
    # latency 1.0 + 200/100 service.
    assert elapsed == [pytest.approx(3.0)]
    assert cluster.metrics[0].io_time == pytest.approx(3.0)


def test_reads_queue_on_busy_servers():
    """More concurrent reads than servers: the excess waits."""
    spec = MachineSpec(n_ranks=3, io_latency=0.0, io_bandwidth=100.0,
                       io_servers=1)
    cluster = Cluster(spec)
    times = {}

    def prog(ctx):
        yield from ctx.read_block_bytes(100)  # 1s service each
        times[ctx.rank] = ctx.now

    for r in range(3):
        cluster.engine.spawn(f"p{r}", prog(cluster.context(r)))
    cluster.run()
    assert sorted(times.values()) == [pytest.approx(1.0),
                                      pytest.approx(2.0),
                                      pytest.approx(3.0)]
    assert cluster.filesystem.total_wait > 0


def test_parallel_servers_avoid_queueing():
    spec = MachineSpec(n_ranks=3, io_latency=0.0, io_bandwidth=100.0,
                       io_servers=3)
    cluster = Cluster(spec)
    times = {}

    def prog(ctx):
        yield from ctx.read_block_bytes(100)
        times[ctx.rank] = ctx.now

    for r in range(3):
        cluster.engine.spawn(f"p{r}", prog(cluster.context(r)))
    cluster.run()
    assert all(t == pytest.approx(1.0) for t in times.values())
    assert cluster.filesystem.total_wait == 0.0
    assert cluster.filesystem.mean_queue_delay == 0.0


def test_filesystem_counters():
    cluster = Cluster(MachineSpec(n_ranks=1))

    def prog(ctx):
        yield from ctx.read_block_bytes(1000)
        yield from ctx.read_block_bytes(2000)

    cluster.engine.spawn("p", prog(cluster.context(0)))
    cluster.run()
    assert cluster.filesystem.total_reads == 2
    assert cluster.filesystem.total_bytes == 3000


def test_negative_read_rejected():
    cluster = Cluster(MachineSpec(n_ranks=1))

    def prog(ctx):
        yield from ctx.read_block_bytes(-1)

    cluster.engine.spawn("p", prog(cluster.context(0)))
    with pytest.raises(Exception):
        cluster.run()


def test_server_choice_is_deterministic():
    def run_once():
        spec = MachineSpec(n_ranks=4, io_servers=2)
        cluster = Cluster(spec)
        times = {}

        def prog(ctx):
            yield from ctx.read_block_bytes(10_000_000)
            times[ctx.rank] = ctx.now

        for r in range(4):
            cluster.engine.spawn(f"p{r}", prog(cluster.context(r)))
        cluster.run()
        return times

    assert run_once() == run_once()
