"""Tests of the seed generators."""

import numpy as np
import pytest

from repro.mesh.bounds import Bounds
from repro.seeding import (
    box_seeds,
    circle_seeds,
    dense_cluster_seeds,
    grid_seeds,
    sparse_random_seeds,
)


@pytest.fixture
def bounds():
    return Bounds.cube(0.0, 1.0)


def test_sparse_random_inside_and_deterministic(bounds):
    a = sparse_random_seeds(bounds, 100, seed=1)
    b = sparse_random_seeds(bounds, 100, seed=1)
    c = sparse_random_seeds(bounds, 100, seed=2)
    assert a.shape == (100, 3)
    assert np.all(bounds.contains(a))
    assert np.array_equal(a, b)
    assert not np.array_equal(a, c)


def test_sparse_random_count_validation(bounds):
    with pytest.raises(ValueError):
        sparse_random_seeds(bounds, 0)


def test_grid_seeds_shape_and_margin(bounds):
    s = grid_seeds(bounds, (4, 3, 2), margin=0.1)
    assert s.shape == (24, 3)
    assert s[:, 0].min() == pytest.approx(0.1)
    assert s[:, 0].max() == pytest.approx(0.9)


def test_grid_seeds_thermal_sparse_case(bounds):
    """The paper's 16x16x16 = 4096 grid."""
    s = grid_seeds(bounds, (16, 16, 16))
    assert s.shape == (4096, 3)
    assert np.all(bounds.contains(s))


def test_grid_seeds_singleton_axis(bounds):
    s = grid_seeds(bounds, (1, 2, 2))
    assert np.allclose(s[:, 0], 0.5)


def test_grid_seeds_validation(bounds):
    with pytest.raises(ValueError):
        grid_seeds(bounds, (0, 2, 2))
    with pytest.raises(ValueError):
        grid_seeds(bounds, (2, 2, 2), margin=0.6)


def test_dense_cluster_centered(bounds):
    s = dense_cluster_seeds((0.5, 0.5, 0.5), 0.05, 500, seed=3)
    assert s.shape == (500, 3)
    assert np.allclose(s.mean(axis=0), [0.5, 0.5, 0.5], atol=0.02)
    assert np.allclose(s.std(axis=0), 0.05, atol=0.02)


def test_dense_cluster_clipping(bounds):
    s = dense_cluster_seeds((0.02, 0.5, 0.5), 0.1, 300, seed=4,
                            clip_bounds=bounds)
    assert np.all(bounds.contains(s))


def test_dense_cluster_impossible_clip():
    far = Bounds.cube(100.0, 101.0)
    with pytest.raises(RuntimeError):
        dense_cluster_seeds((0.0, 0.0, 0.0), 0.01, 10, clip_bounds=far)


def test_dense_cluster_validation():
    with pytest.raises(ValueError):
        dense_cluster_seeds((0, 0, 0), -1.0, 10)
    with pytest.raises(ValueError):
        dense_cluster_seeds((0, 0, 0), 1.0, 0)


def test_circle_seeds_geometry():
    center = np.array([0.5, 0.5, 0.5])
    s = circle_seeds(center, 0.1, 64, normal=(1.0, 0.0, 0.0))
    assert s.shape == (64, 3)
    # All points at distance radius from center.
    assert np.allclose(np.linalg.norm(s - center, axis=1), 0.1)
    # All in the plane x = 0.5 (normal is x).
    assert np.allclose(s[:, 0], 0.5)
    # Evenly spaced: consecutive gaps equal.
    gaps = np.linalg.norm(np.diff(np.vstack([s, s[:1]]), axis=0), axis=1)
    assert np.allclose(gaps, gaps[0])


def test_circle_seeds_arbitrary_normal():
    n = np.array([1.0, 1.0, 1.0])
    s = circle_seeds((0, 0, 0), 1.0, 16, normal=n)
    assert np.allclose(s @ n, 0.0, atol=1e-12)


def test_circle_seeds_validation():
    with pytest.raises(ValueError):
        circle_seeds((0, 0, 0), 0.0, 8)
    with pytest.raises(ValueError):
        circle_seeds((0, 0, 0), 1.0, 8, normal=(0, 0, 0))
    with pytest.raises(ValueError):
        circle_seeds((0, 0, 0), 1.0, 0)


def test_box_seeds_subregion(bounds):
    s = box_seeds(bounds, 200, seed=5, lo_frac=(0.5, 0.5, 0.5),
                  hi_frac=(1.0, 1.0, 1.0))
    assert np.all(s >= 0.5)
    assert np.all(s <= 1.0)
