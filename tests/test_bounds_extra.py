"""Additional Bounds coverage: denormalized edge cases and equality."""

import numpy as np
import pytest

from repro.mesh.bounds import Bounds


def test_equality_and_repr_fields():
    a = Bounds.cube(0.0, 1.0)
    b = Bounds((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))
    assert a == b
    assert a.lo == (0.0, 0.0, 0.0)


def test_denormalized_outside_unit_extrapolates():
    b = Bounds.cube(0.0, 2.0)
    out = b.denormalized(np.array([1.5, -0.5, 0.5]))
    assert np.allclose(out, [3.0, -1.0, 1.0])


def test_expanded_negative_shrinks_and_validates():
    b = Bounds.cube(0.0, 1.0)
    small = b.expanded(-0.2)
    assert small.lo == (0.2, 0.2, 0.2)
    with pytest.raises(ValueError):
        b.expanded(-0.6)  # would invert the box


def test_contains_batch_shapes():
    b = Bounds.cube(0.0, 1.0)
    single = b.contains(np.array([0.5, 0.5, 0.5]))
    assert isinstance(bool(single), bool)
    batch = b.contains(np.zeros((4, 3)) + 0.5)
    assert batch.shape == (4,)


def test_center_and_size_consistency():
    b = Bounds((-2.0, 0.0, 1.0), (2.0, 1.0, 4.0))
    assert np.allclose(b.center, [0.0, 0.5, 2.5])
    assert np.allclose(b.lo_array + b.size, b.hi_array)
