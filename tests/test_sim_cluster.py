"""Tests of the Cluster/RankContext wiring."""

import pytest

from repro.sim.cluster import Cluster, RankContext
from repro.sim.machine import MachineSpec
from repro.sim.trace import Trace


def test_context_out_of_range():
    cluster = Cluster(MachineSpec(n_ranks=2))
    with pytest.raises(ValueError):
        cluster.context(2)
    with pytest.raises(ValueError):
        cluster.context(-1)


def test_compute_charges_time_and_steps():
    cluster = Cluster(MachineSpec(n_ranks=1, seconds_per_step=0.5))
    ctx = cluster.context(0)

    def prog():
        seconds = yield from ctx.compute(4)
        assert seconds == pytest.approx(2.0)

    cluster.engine.spawn("p", prog())
    wall = cluster.run()
    assert wall == pytest.approx(2.0)
    assert cluster.metrics[0].compute_time == pytest.approx(2.0)
    assert cluster.metrics[0].steps == 4


def test_compute_zero_steps_is_free():
    cluster = Cluster(MachineSpec(n_ranks=1))
    ctx = cluster.context(0)

    def prog():
        yield from ctx.compute(0)

    cluster.engine.spawn("p", prog())
    assert cluster.run() == 0.0


def test_compute_negative_steps_rejected():
    cluster = Cluster(MachineSpec(n_ranks=1))
    ctx = cluster.context(0)

    def prog():
        yield from ctx.compute(-1)

    cluster.engine.spawn("p", prog())
    with pytest.raises(Exception):
        cluster.run()


def test_passed_trace_is_used_even_when_empty():
    """Regression: an empty Trace is falsy; Cluster must still adopt it."""
    trace = Trace(enabled=True)
    cluster = Cluster(MachineSpec(n_ranks=1), trace=trace)
    assert cluster.trace is trace
    ctx = cluster.context(0)

    def prog():
        yield from ctx.compute(1)
        ctx.trace.emit(0, "tick")

    cluster.engine.spawn("p", prog())
    cluster.run()
    assert len(trace) == 1
    assert trace.select(event="tick")[0].time > 0


def test_peak_memory_recorded_after_run():
    cluster = Cluster(MachineSpec(n_ranks=2))
    ctx = cluster.context(0)

    def prog():
        ctx.memory.allocate(1000, "x")
        yield from ctx.compute(1)
        ctx.memory.free(1000, "x")

    cluster.engine.spawn("p", prog())
    cluster.run()
    assert cluster.metrics[0].peak_memory_bytes == 1000
    assert cluster.metrics[1].peak_memory_bytes == 0
