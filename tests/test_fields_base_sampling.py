"""Tests of field base classes and block sampling."""

import numpy as np
import pytest

from repro.fields.base import FrozenTimeField, SampledField
from repro.fields.library import RigidRotationField, UniformField
from repro.fields.sampling import sample_block, sample_field
from repro.mesh.bounds import Bounds
from repro.mesh.decomposition import Decomposition


def test_sampled_field_matches_source_for_linear_fields():
    src = RigidRotationField(domain=Bounds.cube(0.0, 1.0))
    xs = np.linspace(0, 1, 9)
    gx, gy, gz = np.meshgrid(xs, xs, xs, indexing="ij")
    pts = np.stack([gx.ravel(), gy.ravel(), gz.ravel()], axis=1)
    data = src.evaluate(pts).reshape(9, 9, 9, 3)
    sampled = SampledField(data, src.domain)
    rng = np.random.default_rng(0)
    q = rng.uniform(size=(30, 3))
    assert np.allclose(sampled.evaluate(q), src.evaluate(q), atol=1e-12)


def test_sampled_field_validation():
    with pytest.raises(ValueError):
        SampledField(np.zeros((4, 4, 4)), Bounds.cube(0, 1))
    with pytest.raises(ValueError):
        SampledField(np.zeros((1, 4, 4, 3)), Bounds.cube(0, 1))


def test_frozen_time_field_is_time_independent():
    base = UniformField(velocity=(1.0, 2.0, 3.0))
    frozen = FrozenTimeField(base, time_range=(0.0, 5.0))
    p = np.array([[0.5, 0.5, 0.5]])
    assert np.allclose(frozen.evaluate(p, 0.0), frozen.evaluate(p, 4.9))
    assert frozen.time_range == (0.0, 5.0)
    assert frozen.domain == base.domain


def test_snapshot_of_unsteady_field():
    base = UniformField(velocity=(2.0, 0.0, 0.0))
    frozen = FrozenTimeField(base)
    snap = frozen.at_time(0.3)
    p = np.array([[0.1, 0.1, 0.1]])
    assert np.allclose(snap.evaluate(p), [[2.0, 0.0, 0.0]])
    assert "0.3" in snap.name


def test_sample_block_nodes_exact():
    field = RigidRotationField(domain=Bounds.cube(0.0, 1.0))
    dec = Decomposition(field.domain, (2, 2, 2), (4, 4, 4))
    block = sample_block(field, dec.info(2))
    xs, ys, zs = dec.info(2).node_coordinates()
    for (i, j, k) in ((0, 0, 0), (2, 1, 3), (4, 4, 4)):
        p = np.array([[xs[i], ys[j], zs[k]]])
        assert np.allclose(block.data[i, j, k], field.evaluate(p)[0])


def test_sample_block_ghost_validation():
    field = UniformField(domain=Bounds.cube(0.0, 1.0))
    dec = Decomposition(field.domain, (2, 2, 2), (4, 4, 4))
    with pytest.raises(ValueError):
        sample_block(field, dec.info(0), ghost_layers=-1)


def test_sample_field_covers_all_blocks():
    field = UniformField(domain=Bounds.cube(0.0, 1.0))
    dec = Decomposition(field.domain, (2, 2, 1), (3, 3, 3))
    blocks = sample_field(field, dec)
    assert set(blocks) == set(range(4))
    assert all(blocks[i].block_id == i for i in blocks)


def test_neighbouring_samples_agree_on_shared_face():
    """Neighbouring blocks share boundary nodes, so interpolation is
    continuous across faces without ghost data."""
    field = RigidRotationField(domain=Bounds.cube(0.0, 1.0))
    dec = Decomposition(field.domain, (2, 1, 1), (4, 4, 4))
    left = sample_block(field, dec.info(0))
    right = sample_block(field, dec.info(1))
    assert np.allclose(left.data[-1, :, :, :], right.data[0, :, :, :])
    # And the sampled velocity agrees exactly on the face.
    face_pts = np.array([[0.5, y, z] for y in (0.1, 0.6)
                         for z in (0.3, 0.9)])
    assert np.allclose(left.velocity(face_pts), right.velocity(face_pts),
                       atol=1e-13)
