"""Tests of the EXPERIMENTS.md exporters (cache-only path)."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.experiments import CACHE_VERSION

REPO = Path(__file__).resolve().parents[1]


def test_cache_export_renders_partial_tables(tmp_path, monkeypatch):
    """The cache-only exporter renders whatever is cached and marks
    missing datasets, without running any simulation."""
    cache_dir = tmp_path / "cache"
    cache_dir.mkdir()
    # Minimal synthetic cache: one astro run.
    cache = {
        "version": CACHE_VERSION,
        "runs": [{
            "key": {"dataset": "astro", "seeding": "sparse",
                    "algorithm": "static", "n_ranks": 16, "scale": 1.0},
            "summary": {"status": "ok", "wall_clock": 12.5,
                        "io_time": 3.25, "comm_time": 0.75,
                        "compute_time": 8.0, "block_efficiency": 1.0,
                        "blocks_loaded": 10, "blocks_purged": 0,
                        "messages": 5, "bytes_sent": 100, "steps": 1000,
                        "parallel_efficiency": 0.9},
        }],
    }
    (cache_dir / "sweep_cache.json").write_text(json.dumps(cache))
    out = tmp_path / "EXP.md"
    env = {"REPRO_CACHE_DIR": str(cache_dir), "PATH": "/usr/bin:/bin"}
    import os
    full_env = dict(os.environ)
    full_env.update(env)
    result = subprocess.run(
        [sys.executable,
         str(REPO / "benchmarks" / "export_experiments_from_cache.py"),
         str(out)],
        capture_output=True, text=True, env=full_env, cwd=REPO)
    assert result.returncode == 0, result.stderr
    text = out.read_text()
    assert "Figure 5" in text
    assert "12.500" in text            # the cached wall clock
    assert "not yet run" in text       # fusion/thermal missing
    assert "partially completed sweep" in text


def test_cache_export_reads_per_key_entries(tmp_path, monkeypatch):
    """The exporter reads the current per-key atomic cache directory,
    not just the legacy whole-file layout."""
    import os

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    import repro.analysis.experiments as exp
    from repro.analysis.experiments import (ExperimentKey, RunSummary,
                                            _save_entry, clear_cache)
    exp._DISK_LOADED = False
    clear_cache()
    key = ExperimentKey(dataset="fusion", seeding="sparse",
                        algorithm="hybrid", n_ranks=16, scale=1.0)
    _save_entry(key, RunSummary(key=key, status="ok", wall_clock=42.125,
                                io_time=1.0, comm_time=0.5,
                                compute_time=40.0), elapsed=2.0)
    clear_cache()
    exp._DISK_LOADED = False
    out = tmp_path / "EXP.md"
    full_env = dict(os.environ)
    full_env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
    result = subprocess.run(
        [sys.executable,
         str(REPO / "benchmarks" / "export_experiments_from_cache.py"),
         str(out)],
        capture_output=True, text=True, env=full_env, cwd=REPO)
    assert result.returncode == 0, result.stderr
    text = out.read_text()
    assert "42.125" in text            # the per-key cached wall clock
    clear_cache()
    exp._DISK_LOADED = False
