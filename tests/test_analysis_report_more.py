"""Additional tests of report formatting edge cases."""

import pytest

from repro.analysis.experiments import ExperimentKey, RunSummary
from repro.analysis.report import figure_table, format_series, format_value


def make_summary(algorithm="static", seeding="sparse", n_ranks=16,
                 status="ok", **metrics):
    key = ExperimentKey(dataset="astro", seeding=seeding,
                        algorithm=algorithm, n_ranks=n_ranks)
    base = dict(wall_clock=1.0, io_time=2.0, comm_time=0.5,
                block_efficiency=0.9)
    base.update(metrics)
    if status != "ok":
        return RunSummary(key=key, status=status)
    return RunSummary(key=key, status=status, **base)


def test_oom_cell_renders_in_table():
    summaries = [
        make_summary("static", n_ranks=16),
        make_summary("static", n_ranks=32, status="oom"),
    ]
    table = figure_table("astro", summaries, "wall_clock")
    assert "OOM" in table
    assert "1.000" in table


def test_missing_rank_renders_dash():
    summaries = [
        make_summary("static", n_ranks=16),
        make_summary("hybrid", n_ranks=32),
    ]
    table = figure_table("astro", summaries, "wall_clock")
    # static has no 32-rank point and hybrid no 16-rank point.
    assert "-" in table


def test_value_formats_per_metric():
    assert format_value("wall_clock", 1.23456) == "1.235"
    assert format_value("io_time", 12.345) == "12.35"
    assert format_value("comm_time", 0.00123) == "0.001"
    assert format_value("block_efficiency", 1.0) == "1.000"


def test_series_keys_cover_algorithm_and_seeding():
    summaries = [
        make_summary("static", "sparse"),
        make_summary("static", "dense"),
        make_summary("hybrid", "sparse"),
    ]
    series = format_series(summaries, "comm_time")
    assert set(series) == {("static", "sparse"), ("static", "dense"),
                           ("hybrid", "sparse")}


def test_table_header_names_figure_and_units():
    summaries = [make_summary()]
    t = figure_table("astro", summaries, "io_time")
    assert t.startswith("Figure 6")
    assert "[s]" in t
    t2 = figure_table("astro", summaries, "block_efficiency")
    assert "[" not in t2.splitlines()[0]  # dimensionless
