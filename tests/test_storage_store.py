"""Tests of block providers: generation, memoization, disk round-trip."""

import numpy as np
import pytest

from repro.fields import SupernovaField, UniformField
from repro.mesh.bounds import Bounds
from repro.mesh.decomposition import Decomposition
from repro.storage.costmodel import DataCostModel
from repro.storage.store import (
    BlockStore,
    DiskBlockStore,
    read_block_file,
    write_block_file,
)


@pytest.fixture
def store():
    field = SupernovaField()
    dec = Decomposition(field.domain, (2, 2, 2), (4, 4, 4))
    return BlockStore(field, dec)


def test_load_is_deterministic(store):
    a = store.load(3)
    b = store.load(3)
    assert a is b  # memoized
    fresh = BlockStore(store.field, store.decomposition).load(3)
    assert np.array_equal(a.data, fresh.data)


def test_generation_counted_once(store):
    store.load(0)
    store.load(0)
    store.load(1)
    assert store.generation_count == 2


def test_loaded_block_is_readonly(store):
    block = store.load(0)
    with pytest.raises(ValueError):
        block.data[0, 0, 0, 0] = 99.0


def test_block_matches_field_samples(store):
    block = store.load(5)
    info = store.decomposition.info(5)
    xs, ys, zs = info.node_coordinates()
    p = np.array([[xs[1], ys[2], zs[3]]])
    assert np.allclose(block.data[1, 2, 3], store.field.evaluate(p)[0])


def test_block_file_roundtrip(tmp_path):
    rng = np.random.default_rng(0)
    data = rng.normal(size=(4, 5, 6, 3))
    path = tmp_path / "b.rpb"
    write_block_file(path, data, ghost_layers=1)
    out, ghost = read_block_file(path)
    assert ghost == 1
    assert np.array_equal(out, data)


def test_block_file_bad_magic(tmp_path):
    path = tmp_path / "bad.rpb"
    path.write_bytes(b"NOPE" + b"\x00" * 40)
    with pytest.raises(ValueError, match="magic"):
        read_block_file(path)


def test_block_file_truncated(tmp_path):
    rng = np.random.default_rng(0)
    data = rng.normal(size=(3, 3, 3, 3))
    path = tmp_path / "t.rpb"
    write_block_file(path, data)
    raw = path.read_bytes()
    path.write_bytes(raw[:-16])
    with pytest.raises(ValueError, match="truncated"):
        read_block_file(path)


def test_block_file_shape_validation(tmp_path):
    with pytest.raises(ValueError):
        write_block_file(tmp_path / "x.rpb", np.zeros((3, 3, 3)))


def test_disk_store_roundtrip(tmp_path, store):
    disk = DiskBlockStore.write(store, tmp_path / "blocks")
    assert disk.n_blocks == store.n_blocks
    for bid in (0, 3, 7):
        a = store.load(bid)
        b = disk.load(bid)
        assert np.array_equal(a.data, b.data)
        assert a.info.bounds == b.info.bounds


def test_disk_store_missing_directory(store):
    with pytest.raises(FileNotFoundError):
        DiskBlockStore("/nonexistent/path/xyz", store.decomposition)


def test_cost_model_block_bytes():
    cm = DataCostModel()
    assert cm.block_nbytes == 12_000_000  # 1M cells x 12 B
    assert cm.streamline_memory_nbytes(0) == cm.streamline_overhead_nbytes
    assert cm.streamline_memory_nbytes(10) \
        == cm.streamline_overhead_nbytes + 10 * cm.vertex_nbytes


def test_cost_model_wire_sizes():
    cm = DataCostModel()
    full = cm.streamline_wire_nbytes(100)
    compact = cm.streamline_wire_nbytes(100, compact=True)
    assert full == cm.message_header_nbytes + 100 * cm.vertex_nbytes
    assert compact == cm.message_header_nbytes
    assert compact < full


def test_cost_model_validation():
    with pytest.raises(ValueError):
        DataCostModel(bytes_per_cell=0)
    with pytest.raises(ValueError):
        DataCostModel().streamline_memory_nbytes(-1)
