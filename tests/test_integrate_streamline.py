"""Tests of streamline state, geometry, and modelled sizes."""

import numpy as np
import pytest

from repro.integrate.streamline import (
    STREAMLINE_HEADER_NBYTES,
    STREAMLINE_OVERHEAD_NBYTES,
    VERTEX_NBYTES,
    Status,
    Streamline,
    make_streamlines,
)


def test_seed_becomes_position():
    s = Streamline(sid=0, seed=np.array([1.0, 2.0, 3.0]))
    assert np.array_equal(s.position, [1.0, 2.0, 3.0])
    assert s.position is not s.seed


def test_vertices_without_segments_is_seed():
    s = Streamline(sid=0, seed=np.array([0.1, 0.2, 0.3]))
    v = s.vertices()
    assert v.shape == (1, 3)
    assert np.allclose(v[0], [0.1, 0.2, 0.3])


def test_segments_concatenate_in_order():
    s = Streamline(sid=0, seed=np.zeros(3))
    s.append_segment(np.array([[0.0, 0, 0], [1.0, 0, 0]]))
    s.append_segment(np.array([[2.0, 0, 0]]))
    v = s.vertices()
    assert np.allclose(v[:, 0], [0, 1, 2])
    assert s.n_vertices == 3


def test_empty_segment_ignored():
    s = Streamline(sid=0, seed=np.zeros(3))
    s.append_segment(np.zeros((0, 3)))
    assert s.segments == []


def test_bad_segment_shape():
    s = Streamline(sid=0, seed=np.zeros(3))
    with pytest.raises(ValueError):
        s.append_segment(np.zeros((3, 2)))


def test_arc_length():
    s = Streamline(sid=0, seed=np.zeros(3))
    s.append_segment(np.array([[0, 0, 0], [3.0, 0, 0], [3.0, 4.0, 0]]))
    assert s.arc_length() == pytest.approx(7.0)
    fresh = Streamline(sid=1, seed=np.zeros(3))
    assert fresh.arc_length() == 0.0


def test_memory_and_wire_sizes():
    s = Streamline(sid=0, seed=np.zeros(3))
    s.append_segment(np.zeros((10, 3)))
    assert s.geometry_nbytes == 10 * VERTEX_NBYTES
    assert s.memory_nbytes == STREAMLINE_OVERHEAD_NBYTES \
        + 10 * VERTEX_NBYTES
    assert s.comm_nbytes() == STREAMLINE_HEADER_NBYTES \
        + 10 * VERTEX_NBYTES
    assert s.comm_nbytes(compact=True) == STREAMLINE_HEADER_NBYTES


def test_terminate_transitions():
    s = Streamline(sid=0, seed=np.zeros(3))
    assert not s.status.terminated
    s.terminate(Status.MAX_STEPS)
    assert s.status is Status.MAX_STEPS
    assert s.status.terminated
    with pytest.raises(RuntimeError):
        s.terminate(Status.OUT_OF_BOUNDS)  # double termination
    with pytest.raises(ValueError):
        Streamline(sid=1, seed=np.zeros(3)).terminate(Status.ACTIVE)


def test_make_streamlines():
    seeds = np.array([[0.0, 0, 0], [1.0, 1, 1]])
    lines = make_streamlines(seeds, start_id=5)
    assert [l.sid for l in lines] == [5, 6]
    assert np.allclose(lines[1].seed, [1, 1, 1])
    with pytest.raises(ValueError):
        make_streamlines(np.zeros((2, 2)))


def test_all_statuses_have_terminated_flag():
    assert not Status.ACTIVE.terminated
    for st in Status:
        if st is not Status.ACTIVE:
            assert st.terminated
