"""Tests of the compact-communication comparison (§8)."""

import numpy as np
import pytest

import repro
from repro.ext.compactcomm import compare_compact_communication
from repro.fields import SupernovaField
from repro.integrate import IntegratorConfig
from repro.seeding import sparse_random_seeds
from repro.sim.machine import MachineSpec


@pytest.fixture(scope="module")
def problem():
    field = SupernovaField()
    seeds = sparse_random_seeds(
        field.domain.subbox((0.2, 0.2, 0.2), (0.8, 0.8, 0.8)), 30,
        seed=21)
    return repro.ProblemSpec(
        field=field, seeds=seeds,
        blocks_per_axis=(4, 4, 4), cells_per_block=(6, 6, 6),
        integ=IntegratorConfig(max_steps=100, rtol=1e-5, atol=1e-7))


def test_compact_comm_saves_bytes(problem):
    report = compare_compact_communication(
        problem, machine=MachineSpec(n_ranks=8))
    assert report.compact_bytes <= report.full_bytes
    assert 0.0 <= report.bytes_saved_fraction <= 1.0
    assert report.bytes_saved == report.full_bytes - report.compact_bytes


def test_compact_comm_report_fields(problem):
    report = compare_compact_communication(
        problem, machine=MachineSpec(n_ranks=8))
    assert report.full_wall > 0
    assert report.compact_wall > 0
    assert report.comm_time_saved \
        == pytest.approx(report.full_comm_time - report.compact_comm_time)
