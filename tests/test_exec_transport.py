"""Distributed sweep transport: framing, node specs, loopback remotes,
failover, and the byte-identity contract across transports."""

import dataclasses
import io
import json
import os
import struct
import sys
from pathlib import Path

import pytest

from repro.analysis.experiments import (
    ExperimentKey,
    RunSummary,
    clear_cache,
    run_experiment,
)
from repro.exec import (
    LOCAL_NODE,
    OUTCOME_OK,
    JsonlTelemetry,
    NodeSpec,
    RemoteTransport,
    RunSpec,
    RuntimeEstimator,
    SweepExecutor,
    TransportError,
    calibration_probe,
    grid_specs,
    load_events,
    parse_nodes,
    read_nodes_file,
    validate_events,
)
from repro.exec.transport import (
    MAX_FRAME_BYTES,
    payload_from_wire,
    payload_to_wire,
    read_frame,
    spec_from_wire,
    spec_to_wire,
    write_frame,
)
from repro.exec.worker import FAULT_ENV
from repro.exec.transport import REMOTE_FAULT_ENV

REPO = Path(__file__).resolve().parent.parent

#: Loopback "remote": the worker protocol over a plain subprocess on
#: this machine — same framing, handshake, and failover paths as ssh,
#: no network needed.
LOOPBACK = f"{sys.executable} -m repro.exec.remote_worker"


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Temp sweep cache + a PYTHONPATH the loopback workers inherit
    (they are plain subprocesses, not multiprocessing children)."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    src = str(REPO / "src")
    existing = os.environ.get("PYTHONPATH", "")
    if src not in existing.split(os.pathsep):
        monkeypatch.setenv(
            "PYTHONPATH", src + (os.pathsep + existing if existing
                                 else ""))
    import repro.analysis.experiments as exp
    exp._DISK_LOADED = False
    clear_cache()
    yield
    clear_cache()
    exp._DISK_LOADED = False


def _spec(dataset="astro", seeding="sparse", algorithm="ondemand",
          n_ranks=4, **kw):
    return RunSpec(dataset=dataset, seeding=seeding, algorithm=algorithm,
                   n_ranks=n_ranks, scale=kw.pop("scale", 0.02), **kw)


def _summary_doc(outcomes):
    runs = {}
    for o in outcomes:
        entry = dataclasses.asdict(o.payload)
        entry.pop("key")
        runs[o.spec.name] = entry
    return json.dumps(runs, sort_keys=True).encode()


# --------------------------------------------------------------------- #
# Node specs
# --------------------------------------------------------------------- #

def test_parse_nodes_basic():
    nodes = parse_nodes("host1:4,host2:8")
    assert nodes == [NodeSpec("host1", 4), NodeSpec("host2", 8)]
    assert parse_nodes("host1") == [NodeSpec("host1", 1)]
    local, = parse_nodes("local:2")
    assert local.is_local and local.slots == 2


def test_parse_nodes_rejects_bad_specs():
    with pytest.raises(ValueError, match="listed twice"):
        parse_nodes("a:1,a:2")
    with pytest.raises(ValueError, match="not an integer"):
        parse_nodes("a:lots")
    with pytest.raises(ValueError, match="must be positive"):
        parse_nodes("a:0")
    with pytest.raises(ValueError, match="no nodes"):
        parse_nodes(",,")
    with pytest.raises(ValueError, match="empty node name"):
        parse_nodes(":4")


def test_read_nodes_file(tmp_path):
    path = tmp_path / "nodes"
    path.write_text("# fleet\nbig:8\nsmall 2   # spaced form\n"
                    "\nbare\n")
    assert read_nodes_file(path) == [NodeSpec("big", 8),
                                     NodeSpec("small", 2),
                                     NodeSpec("bare", 1)]
    path.write_text("a b c\n")
    with pytest.raises(ValueError, match="expected 'host"):
        read_nodes_file(path)
    path.write_text("# nothing\n")
    with pytest.raises(ValueError, match="no nodes listed"):
        read_nodes_file(path)


# --------------------------------------------------------------------- #
# Frame protocol
# --------------------------------------------------------------------- #

def test_frame_roundtrip_preserves_floats_exactly():
    buf = io.BytesIO()
    obj = {"x": 0.1 + 0.2, "names": ["a", "b"], "n": 7}
    write_frame(buf, obj)
    buf.seek(0)
    back = read_frame(buf)
    assert back == obj
    assert back["x"].hex() == obj["x"].hex()  # bit-exact


def test_read_frame_raises_eoferror_on_bad_streams():
    with pytest.raises(EOFError, match="closed"):
        read_frame(io.BytesIO(b""))
    buf = io.BytesIO()
    write_frame(buf, {"k": 1})
    with pytest.raises(EOFError, match="mid-frame"):
        read_frame(io.BytesIO(buf.getvalue()[:-1]))
    huge = struct.pack(">I", MAX_FRAME_BYTES + 1)
    with pytest.raises(EOFError, match="exceeds"):
        read_frame(io.BytesIO(huge))
    garbled = struct.pack(">I", 4) + b"\xff\xfe\x00\x01"
    with pytest.raises(EOFError, match="undecodable"):
        read_frame(io.BytesIO(garbled))


def test_spec_and_payload_wire_roundtrip():
    spec = _spec(algorithm="hybrid")
    assert spec_from_wire(spec_to_wire(spec)) == spec
    summary = run_experiment("astro", "sparse", "ondemand", 4, scale=0.02)
    wire = payload_to_wire(summary)
    back = payload_from_wire(json.loads(json.dumps(wire)))
    assert isinstance(back, RunSummary)
    assert back == summary  # frozen dataclasses: exact float equality
    entry = {"status": "ok", "wall_clock": 1.25}
    assert payload_from_wire(json.loads(
        json.dumps(payload_to_wire(entry)))) == entry


def test_calibration_probe_is_positive_and_reproducible():
    a = calibration_probe(repeats=1)
    assert a > 0.0


# --------------------------------------------------------------------- #
# Estimator node speed
# --------------------------------------------------------------------- #

def test_estimator_node_speed_from_retire_history(tmp_path):
    log = tmp_path / "events.jsonl"
    rows = [
        {"event": "retire", "run": "r1", "elapsed": 2.0, "status": "ok",
         "node": "slowbox"},
        {"event": "retire", "run": "r1", "elapsed": 1.0, "status": "ok",
         "node": "fastbox"},
    ]
    log.write_text("\n".join(json.dumps(r) for r in rows) + "\n")
    est = RuntimeEstimator()
    assert est.load_event_log(log) == 2
    assert est.node_speed("fastbox") > 1.0 > est.node_speed("slowbox")
    assert est.node_speed("unknown") is None


def test_estimator_rejects_near_zero_samples():
    est = RuntimeEstimator()
    spec = _spec()
    assert est.record(spec.name, 0.001) is False  # a cache hit, not a run
    assert not est.has_history(spec)
    assert est.record(spec.name, 0.5) is True


# --------------------------------------------------------------------- #
# Loopback remote transport
# --------------------------------------------------------------------- #

def test_remote_transport_handshake_and_single_run():
    transport = RemoteTransport(NodeSpec("loop", 1), template=LOOPBACK)
    worker = transport.spawn(0)
    try:
        assert worker.hello["protocol"] == 1
        assert worker.speed > 0.0
        worker.send(_spec())
        status, payload, _host = worker.recv()
        assert status == OUTCOME_OK
        assert isinstance(payload, RunSummary)
    finally:
        worker.shutdown()
        assert worker.reap(10.0) == 0
        worker.close()


def test_unreachable_node_spawn_raises_and_marks_failed():
    transport = RemoteTransport(NodeSpec("ghost", 1),
                                template="sh -c 'exit 7'")
    with pytest.raises(TransportError):
        transport.spawn(0)
    assert transport.failed
    with pytest.raises(TransportError, match="unreachable"):
        transport.spawn(1)  # fails fast, no second launch attempt


def test_nodes_sweep_byte_identical_to_serial(tmp_path):
    """The acceptance contract: a 2-node loopback LPT sweep merges
    byte-identically to the serial FIFO sweep."""
    specs = grid_specs(["astro"], ["sparse", "dense"],
                       ["ondemand", "static"], [4], scale=0.02)
    serial = SweepExecutor(jobs=1).run(specs)
    clear_cache(disk=True)  # force the remote workers to really run
    sink = JsonlTelemetry(tmp_path / "events.jsonl")
    distributed = SweepExecutor(
        nodes=parse_nodes("n1:1,n2:1"), remote_template=LOOPBACK,
        schedule="lpt", telemetry=sink).run(specs)
    sink.close()
    assert [o.status for o in distributed] == [OUTCOME_OK] * len(specs)
    assert _summary_doc(serial) == _summary_doc(distributed)
    events = load_events(tmp_path / "events.jsonl")
    assert validate_events(events) == []
    begin = next(e for e in events if e["event"] == "sweep_begin")
    assert [n["node"] for n in begin["nodes"]] == ["n1", "n2"]
    assert {e["node"] for e in events if e["event"] == "retire"} \
        <= {"n1", "n2"}


def test_mixed_local_and_remote_slots():
    specs = grid_specs(["astro"], ["sparse", "dense"], ["ondemand"],
                       [4], scale=0.02)
    serial = SweepExecutor(jobs=1).run(specs)
    clear_cache(disk=True)
    mixed = SweepExecutor(nodes=parse_nodes("local:1,n1:1"),
                          remote_template=LOOPBACK).run(specs)
    assert [o.status for o in mixed] == [OUTCOME_OK] * len(specs)
    assert _summary_doc(serial) == _summary_doc(mixed)


# --------------------------------------------------------------------- #
# Failover
# --------------------------------------------------------------------- #

def test_worker_death_requeues_and_completes(tmp_path, monkeypatch):
    """A remote worker dying mid-run: the run requeues (die-once token
    lets the retry succeed) and the sweep still retires every run."""
    token = tmp_path / "die.tok"
    monkeypatch.setenv(REMOTE_FAULT_ENV,
                       f"die:astro-sparse-static:{token}")
    specs = grid_specs(["astro"], ["sparse"], ["ondemand", "static"],
                       [4], scale=0.02)
    sink = JsonlTelemetry(tmp_path / "events.jsonl")
    outcomes = SweepExecutor(nodes=parse_nodes("n1:1,n2:1"),
                             remote_template=LOOPBACK,
                             telemetry=sink).run(specs)
    sink.close()
    assert [o.status for o in outcomes] == [OUTCOME_OK] * 2
    assert token.exists()
    events = load_events(tmp_path / "events.jsonl")
    assert validate_events(events) == []
    requeues = [e for e in events if e["event"] == "requeue"]
    assert len(requeues) == 1
    assert requeues[0]["run"] == "astro-sparse-static-4"
    assert requeues[0]["target"] == "remote"
    # Exactly one retire per announced run even with the failover.
    assert sum(e["event"] == "retire" for e in events) == len(specs)


def test_retry_exhaustion_falls_back_to_local(tmp_path, monkeypatch):
    """No die-once token: the node kills the run on every attempt, so
    after the retry budget the run finishes on a local fallback."""
    monkeypatch.setenv(REMOTE_FAULT_ENV, "die:astro-sparse-ondemand")
    spec = _spec(algorithm="ondemand")
    sink = JsonlTelemetry(tmp_path / "events.jsonl")
    outcomes = SweepExecutor(nodes=parse_nodes("n1:1"),
                             remote_template=LOOPBACK,
                             telemetry=sink).run([spec])
    sink.close()
    assert outcomes[0].status == OUTCOME_OK
    events = load_events(tmp_path / "events.jsonl")
    assert validate_events(events) == []
    requeues = [e for e in events if e["event"] == "requeue"]
    assert len(requeues) == 2
    assert requeues[-1]["target"] == "local"
    retire, = (e for e in events if e["event"] == "retire")
    assert retire["node"] == LOCAL_NODE


def test_unreachable_node_degrades_to_remaining_nodes(capsys):
    """One dead host in --nodes: warn, drop it, finish on the rest."""
    template = (f"sh -c 'test {{host}} = good && exec {sys.executable}"
                " -m repro.exec.remote_worker || exit 7'")
    specs = grid_specs(["astro"], ["sparse"], ["ondemand", "static"],
                       [4], scale=0.02)
    outcomes = SweepExecutor(nodes=parse_nodes("bad:2,good:1"),
                             remote_template=template).run(specs)
    assert [o.status for o in outcomes] == [OUTCOME_OK] * 2
    assert "bad" in capsys.readouterr().err


def test_all_nodes_unreachable_falls_back_to_local(capsys):
    outcomes = SweepExecutor(nodes=parse_nodes("bad:2"),
                             remote_template="sh -c 'exit 7'",
                             jobs=2).run([_spec()])
    assert outcomes[0].status == OUTCOME_OK
    assert "no nodes reachable" in capsys.readouterr().err


# --------------------------------------------------------------------- #
# CLI integration
# --------------------------------------------------------------------- #

def test_cli_sweep_nodes_loopback(tmp_path, capsys):
    from repro.cli import main

    out_a = tmp_path / "serial.json"
    out_b = tmp_path / "nodes.json"
    base = ["sweep", "--dataset", "astro", "--seeding", "sparse",
            "--algorithm", "ondemand,static", "--ranks", "4",
            "--scale", "0.02"]
    assert main(base + ["--out", str(out_a)]) == 0
    clear_cache(disk=True)
    nodes_file = tmp_path / "nodes.txt"
    nodes_file.write_text("n2:1  # second loopback worker\n")
    code = main(base + ["--out", str(out_b), "--nodes", "n1:1",
                        "--nodes-file", str(nodes_file),
                        "--remote-template", LOOPBACK,
                        "--schedule", "lpt",
                        "--telemetry", str(tmp_path / "telem")])
    assert code == 0
    assert out_a.read_bytes() == out_b.read_bytes()
    report = (tmp_path / "telem" / "utilization.txt").read_text()
    assert "per-node" in report
    assert "n1" in report and "n2" in report


def test_cli_sweep_rejects_bad_nodes(capsys):
    from repro.cli import main

    assert main(["sweep", "--nodes", "a:1,a:2", "--dry-run"]) == 2
    assert "listed twice" in capsys.readouterr().err
    assert main(["sweep", "--nodes-file", "/nonexistent/nodes",
                 "--dry-run"]) == 2
