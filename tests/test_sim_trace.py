"""Tests of the structured event trace."""

from repro.sim.trace import Trace, TraceRecord


def test_disabled_trace_records_nothing():
    t = Trace(enabled=False)
    t.emit(0, "event", x=1)
    assert len(t) == 0


def test_emit_and_select():
    clock = {"now": 0.0}
    t = Trace(enabled=True, clock=lambda: clock["now"])
    t.emit(0, "load", block=3)
    clock["now"] = 1.5
    t.emit(1, "load", block=4)
    t.emit(1, "send", dest=0)
    assert len(t) == 3
    assert len(t.select(event="load")) == 2
    assert len(t.select(rank=1)) == 2
    assert len(t.select(event="load", rank=1)) == 1
    assert t.select(event="send")[0].time == 1.5


def test_record_get_and_dict():
    t = Trace(enabled=True)
    t.emit(2, "x", a=1, b="two")
    rec = list(t)[0]
    assert rec.get("a") == 1
    assert rec.get("b") == "two"
    assert rec.get("missing", 42) == 42
    d = rec.as_dict()
    assert d["rank"] == 2 and d["event"] == "x" and d["a"] == 1


def test_counts():
    t = Trace(enabled=True)
    for _ in range(3):
        t.emit(0, "a")
    t.emit(0, "b")
    assert t.counts() == {"a": 3, "b": 1}


def test_detail_keys_sorted_for_determinism():
    t = Trace(enabled=True)
    t.emit(0, "e", zebra=1, alpha=2)
    rec = list(t)[0]
    assert [k for k, _ in rec.detail] == ["alpha", "zebra"]
