"""Tests of the structured event trace."""

import json

import numpy as np

from repro.sim.cluster import Cluster
from repro.sim.machine import MachineSpec
from repro.sim.trace import NULL_TRACE, Trace, TraceRecord


def test_disabled_trace_records_nothing():
    t = Trace(enabled=False)
    t.emit(0, "event", x=1)
    assert len(t) == 0


def test_emit_and_select():
    clock = {"now": 0.0}
    t = Trace(enabled=True, clock=lambda: clock["now"])
    t.emit(0, "load", block=3)
    clock["now"] = 1.5
    t.emit(1, "load", block=4)
    t.emit(1, "send", dest=0)
    assert len(t) == 3
    assert len(t.select(event="load")) == 2
    assert len(t.select(rank=1)) == 2
    assert len(t.select(event="load", rank=1)) == 1
    assert t.select(event="send")[0].time == 1.5


def test_record_get_and_dict():
    t = Trace(enabled=True)
    t.emit(2, "x", a=1, b="two")
    rec = list(t)[0]
    assert rec.get("a") == 1
    assert rec.get("b") == "two"
    assert rec.get("missing", 42) == 42
    d = rec.as_dict()
    assert d["rank"] == 2 and d["event"] == "x" and d["a"] == 1


def test_counts():
    t = Trace(enabled=True)
    for _ in range(3):
        t.emit(0, "a")
    t.emit(0, "b")
    assert t.counts() == {"a": 3, "b": 1}


def test_detail_keys_sorted_for_determinism():
    t = Trace(enabled=True)
    t.emit(0, "e", zebra=1, alpha=2)
    rec = list(t)[0]
    assert [k for k, _ in rec.detail] == ["alpha", "zebra"]


def test_as_dict_coerces_numpy_scalars():
    t = Trace(enabled=True)
    t.emit(0, "load", block=np.int64(17), cost=np.float32(0.5),
           ids=np.array([1, 2]))
    d = list(t)[0].as_dict()
    assert d["block"] == 17 and type(d["block"]) is int
    assert d["cost"] == 0.5 and type(d["cost"]) is float
    assert d["ids"] == [1, 2]
    json.dumps(d)  # must be JSON-serializable as-is


def test_jsonl_round_trip(tmp_path):
    clock = {"now": 0.0}
    t = Trace(enabled=True, clock=lambda: clock["now"])
    t.emit(0, "load", block=np.int64(3))
    clock["now"] = 1.5
    t.emit(2, "send", dest=1, nbytes=128)
    path = tmp_path / "events.jsonl"
    t.to_jsonl(path)

    back = Trace.from_jsonl(path)
    assert not back.enabled
    assert len(back) == 2
    assert [r.as_dict() for r in back] == [r.as_dict() for r in t]
    assert back.select(event="send")[0].time == 1.5
    assert back.counts() == t.counts()


def test_clusters_share_null_trace_singleton():
    spec = MachineSpec(n_ranks=2)
    a, b = Cluster(spec), Cluster(spec)
    assert a.trace is NULL_TRACE and b.trace is NULL_TRACE
    assert not NULL_TRACE.enabled
    # The singleton's clock is never rebound to any cluster's engine.
    a.trace.emit(0, "ignored")
    assert len(NULL_TRACE) == 0
    assert NULL_TRACE._clock() == 0.0
