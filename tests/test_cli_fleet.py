"""``repro fleet check``: per-target probes, readiness report, and
the exit-code contract (0 all ok / 1 any failure / 2 config error)."""

import sys

import pytest

from repro.exec import (
    NodeSpec,
    ProbeResult,
    QueueSpec,
    fleet_ok,
    fleet_report,
    probe_fleet,
)
from repro.exec.fleet import probe_node, probe_queue
from tests.test_exec_transport import (  # shared loopback idioms
    LOOPBACK,
    isolated_cache,  # noqa: F401  (autouse fixture, re-exported)
)

#: Remote template that reaches "good" and refuses every other host.
GOOD_ONLY = (f"sh -c 'test {{host}} = good && exec {sys.executable}"
             " -m repro.exec.remote_worker || exit 7'")

#: Submit template that accepts the job but never starts a worker.
BLACKHOLE = "sh -c true"


# --------------------------------------------------------------------- #
# Probe primitives
# --------------------------------------------------------------------- #

def test_probe_node_local_is_trivially_ready():
    result = probe_node(NodeSpec("local", 4))
    assert result.ok and result.kind == "local" and result.slots == 4
    assert result.speed == 1.0


def test_probe_node_loopback_runs_handshake():
    result = probe_node(NodeSpec("n1", 2), template=LOOPBACK)
    assert result.ok and result.kind == "ssh"
    assert result.latency is not None and result.latency >= 0.0
    assert result.speed is not None and result.speed > 0.0
    assert "protocol 1" in result.detail


def test_probe_node_unreachable_reports_failure():
    result = probe_node(NodeSpec("ghost", 1),
                        template="sh -c 'exit 7'")
    assert not result.ok
    assert result.detail  # the TransportError text survives


def test_probe_queue_loopback_and_timeout(monkeypatch):
    good = probe_queue(QueueSpec("loopback", 3))
    assert good.ok and good.kind == "queue"
    assert good.slots == 3  # declared capacity, one probe job
    assert "protocol 1" in good.detail

    bad = probe_queue(QueueSpec("loopback", 2), template=BLACKHOLE,
                      acquire_timeout=1.0)
    assert not bad.ok
    assert "dialed back" in bad.detail or bad.detail


def test_probe_fleet_orders_nodes_before_queues():
    results = probe_fleet(nodes=[NodeSpec("local", 1)],
                          queues=[QueueSpec("loopback", 1)])
    assert [r.target for r in results] == ["local", "loopback"]
    assert fleet_ok(results)


# --------------------------------------------------------------------- #
# Report formatting
# --------------------------------------------------------------------- #

def test_fleet_report_formatting():
    results = [
        ProbeResult(target="big", kind="ssh", slots=8, ok=True,
                    latency=0.42, speed=1.25, host="big.cluster",
                    detail="protocol 1"),
        ProbeResult(target="slurm", kind="queue", slots=16, ok=False,
                    detail="submit failed: exit 1"),
    ]
    report = fleet_report(results)
    assert "fleet readiness" in report
    assert "ok" in report and "FAIL" in report
    assert "1/2 target(s) ready (8 slot(s))" in report
    assert "FAILED: slurm" in report
    assert fleet_report([]) == "(no fleet targets configured)"
    assert not fleet_ok(results)


# --------------------------------------------------------------------- #
# CLI exit-code contract
# --------------------------------------------------------------------- #

def test_cli_fleet_check_all_good(capsys):
    from repro.cli import main

    code = main(["fleet", "check", "--nodes", "local:2,n1:1",
                 "--remote-template", LOOPBACK,
                 "--queue", "loopback:1"])
    out = capsys.readouterr().out
    assert code == 0
    assert "3/3 target(s) ready (4 slot(s))" in out
    assert "FAIL" not in out


def test_cli_fleet_check_mixed_good_bad(capsys):
    from repro.cli import main

    code = main(["fleet", "check", "--nodes", "good:2,bad:4",
                 "--remote-template", GOOD_ONLY])
    out = capsys.readouterr().out
    assert code == 1
    assert "1/2 target(s) ready (2 slot(s))" in out
    assert "FAILED: bad" in out


def test_cli_fleet_check_queue_timeout(capsys):
    from repro.cli import main

    code = main(["fleet", "check", "--queue", "loopback:1",
                 "--queue-template", BLACKHOLE,
                 "--acquire-timeout", "1.0"])
    out = capsys.readouterr().out
    assert code == 1
    assert "FAILED: loopback" in out


def test_cli_fleet_check_nodes_file(tmp_path, capsys):
    from repro.cli import main

    nodes_file = tmp_path / "nodes.txt"
    nodes_file.write_text("n1:1\nn2:2\n")
    code = main(["fleet", "check", "--nodes-file", str(nodes_file),
                 "--remote-template", LOOPBACK])
    out = capsys.readouterr().out
    assert code == 0
    assert "2/2 target(s) ready (3 slot(s))" in out


def test_cli_fleet_check_config_errors(capsys):
    from repro.cli import main

    assert main(["fleet", "check"]) == 2
    assert "nothing to probe" in capsys.readouterr().err
    assert main(["fleet", "check", "--queue", "condor:2"]) == 2
    assert "no submit-template preset" in capsys.readouterr().err
    assert main(["fleet", "check", "--nodes", "x:1",
                 "--queue", "x:1",
                 "--queue-template", BLACKHOLE]) == 2
    assert "duplicate target name" in capsys.readouterr().err
