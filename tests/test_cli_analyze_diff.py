"""CLI tests for ``repro analyze`` and ``repro diff``."""

import json

import pytest

from repro.cli import main
from repro.obs.diff import BENCH_SCHEMA

TRACE_ARGS = ["trace", "astro", "--seeding", "sparse", "--algorithm",
              "hybrid", "--ranks", "8", "--scale", "0.1"]


@pytest.fixture(scope="module")
def trace_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("traces")
    assert main(TRACE_ARGS + ["--out", str(out)]) == 0
    return out / "astro-sparse-hybrid-8"


def test_analyze_reports_all_sections(trace_dir, capsys):
    assert main(["analyze", str(trace_dir)]) == 0
    out = capsys.readouterr().out
    assert "critical path" in out
    for kind in ("compute", "io", "comm", "idle"):
        assert kind in out
    assert "imbalance" in out
    assert "participation ratio" in out
    assert "ping-pong" in out
    assert "block efficiency over time" in out
    assert "leaf span durations" in out


def test_analyze_missing_dir_exits_2(tmp_path, capsys):
    assert main(["analyze", str(tmp_path / "nope")]) == 2
    assert "run.json" in capsys.readouterr().err


def test_diff_identical_trace_dirs_pass(trace_dir, capsys):
    assert main(["diff", str(trace_dir), str(trace_dir)]) == 0
    assert "no regressions" in capsys.readouterr().out


def _bench(tmp_path, name, runs):
    path = tmp_path / name
    path.write_text(json.dumps({"schema": BENCH_SCHEMA,
                                "generated": "x", "config": {},
                                "runs": runs}))
    return str(path)


def test_diff_flags_injected_regression(tmp_path, trace_dir, capsys):
    base_run = {"status": "ok", "wall_clock": 100.0}
    worse_run = {"status": "ok", "wall_clock": 112.0}  # +12% > 10% gate
    base = _bench(tmp_path, "base.json", {"r": base_run})
    worse = _bench(tmp_path, "new.json", {"r": worse_run})
    assert main(["diff", base, worse]) == 1
    assert "REGRESSED" in capsys.readouterr().out


def test_diff_threshold_override(tmp_path, capsys):
    base = _bench(tmp_path, "a.json", {"r": {"wall_clock": 100.0}})
    new = _bench(tmp_path, "b.json", {"r": {"wall_clock": 105.0}})
    assert main(["diff", base, new]) == 0  # +5% under the default 10%
    assert main(["diff", base, new, "--threshold", "wall_clock=2"]) == 1
    capsys.readouterr()
    assert main(["diff", base, new, "--threshold", "junk"]) == 2
    assert "NAME=PCT" in capsys.readouterr().err


def test_diff_bad_schema_exits_2(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"schema": 99, "runs": {}}))
    ok = _bench(tmp_path, "ok.json", {"r": {"wall_clock": 1.0}})
    assert main(["diff", str(bad), ok]) == 2
    assert "schema" in capsys.readouterr().err


def test_diff_against_committed_baseline_schema():
    """The committed baseline must stay loadable by the current code."""
    from pathlib import Path

    from repro.obs import load_comparable

    bench_dir = Path(__file__).resolve().parent.parent / "benchmarks"
    baselines = sorted(bench_dir.glob("BENCH_*.json"))
    assert baselines, "no committed BENCH_*.json baseline"
    runs = load_comparable(baselines[-1])
    assert runs
    for entry in runs.values():
        assert "wall_clock" in entry
        assert "critical_path" in entry
