"""Deeper protocol tests of the hybrid master's rule machinery.

These drive :class:`HybridMaster` rule logic through real (small)
simulated runs and assert the rules' bookkeeping invariants, complementing
the end-to-end tests in test_core_hybrid.py.
"""

import numpy as np
import pytest

import repro
from repro.core.config import HybridConfig
from repro.core.driver import run_streamlines
from repro.fields import SupernovaField
from repro.integrate import IntegratorConfig
from repro.seeding import sparse_random_seeds
from repro.sim.machine import MachineSpec
from repro.sim.trace import Trace


@pytest.fixture(scope="module")
def problem():
    field = SupernovaField()
    seeds = sparse_random_seeds(
        field.domain.subbox((0.2, 0.2, 0.2), (0.8, 0.8, 0.8)), 36,
        seed=31)
    return repro.ProblemSpec(
        field=field, seeds=seeds,
        blocks_per_axis=(4, 4, 4), cells_per_block=(6, 6, 6),
        integ=IntegratorConfig(max_steps=120, rtol=1e-5, atol=1e-7))


def run_traced(problem, n_ranks=8, hybrid=None, **spec_kw):
    trace = Trace(enabled=True)
    result = run_streamlines(
        problem, algorithm="hybrid",
        machine=MachineSpec(n_ranks=n_ranks, **spec_kw),
        hybrid=hybrid or HybridConfig(), trace=trace)
    return result, trace


def test_initial_assignment_uses_quantum(problem):
    """Every slave's initial allocation arrives via Assign (N seeds)."""
    cfg = HybridConfig(assignment_quantum=3)
    result, trace = run_traced(problem, hybrid=cfg)
    assert result.ok
    assigns = trace.select(event="assign")
    assert assigns
    assert all(r.get("n") <= 3 for r in assigns)
    # Total assigned equals the in-domain seed count (each seed assigned
    # exactly once by some master).
    assert sum(r.get("n") for r in assigns) == problem.n_seeds


def test_send_force_targets_differ_from_source(problem):
    _, trace = run_traced(problem)
    for r in trace.select(event="send_force"):
        assert r.get("src") != r.get("dst")


def test_load_rule_fires_without_locality_bias(problem):
    """With locality bias off, rules 2/6 still load blocks for slaves
    whose waiting lines nobody else can take."""
    cfg = HybridConfig(locality_bias=False, overload_limit=10,
                       assignment_quantum=2)
    result, trace = run_traced(problem, hybrid=cfg)
    assert result.ok
    # With N_O = 10 the Send_force capacity check blocks most shipping,
    # so the Load rule must carry the run.
    assert trace.counts().get("load_rule", 0) > 0


def test_locality_bias_reduces_shipped_bytes(problem):
    biased, _ = run_traced(problem, hybrid=HybridConfig(
        locality_bias=True, duplication_budget=32))
    literal, _ = run_traced(problem, hybrid=HybridConfig(
        locality_bias=False))
    assert biased.ok and literal.ok
    assert biased.bytes_sent <= literal.bytes_sent


def test_duplication_budget_zero_equals_literal_order(problem):
    a, _ = run_traced(problem, hybrid=HybridConfig(
        locality_bias=True, duplication_budget=0))
    b, _ = run_traced(problem, hybrid=HybridConfig(locality_bias=False))
    # Budget 0 disables the bias entirely: identical schedules.
    assert a.wall_clock == b.wall_clock
    assert a.messages_sent == b.messages_sent


def test_masters_collectively_assign_all_seeds(problem):
    """With several masters, the seed pool is split but nothing is lost,
    including when one master's pool starves and it borrows seeds."""
    cfg = HybridConfig(slaves_per_master=2, assignment_quantum=4)
    result, trace = run_traced(problem, n_ranks=9, hybrid=cfg)
    assert result.ok
    assert len(result.streamlines) == problem.n_seeds
    # At least two masters issued assignments.
    masters = {r.rank for r in trace.select(event="assign")}
    assert len(masters) >= 2


def test_seed_grants_flow_between_masters():
    """A master whose pool is empty borrows seeds from a peer: seeds are
    deliberately placed so they all land in one master's share."""
    field = SupernovaField()
    # All seeds in one octant => grouped seeds land in one master's pool.
    seeds = sparse_random_seeds(
        field.domain.subbox((0.05, 0.05, 0.05), (0.3, 0.3, 0.3)), 24,
        seed=32)
    problem = repro.ProblemSpec(
        field=field, seeds=seeds,
        blocks_per_axis=(4, 4, 4), cells_per_block=(6, 6, 6),
        integ=IntegratorConfig(max_steps=60, rtol=1e-4, atol=1e-6))
    cfg = HybridConfig(slaves_per_master=3, assignment_quantum=2)
    trace = Trace(enabled=True)
    result = run_streamlines(problem, algorithm="hybrid",
                             machine=MachineSpec(n_ranks=8),
                             hybrid=cfg, trace=trace)
    assert result.ok
    # Either grants happened, or (if the lucky master served everything
    # before others starved) at least the run completed consistently.
    grants = trace.select(event="seed_grant")
    for g in grants:
        assert g.get("n") >= 0


def test_no_rank_exceeds_overload_limit_materially(problem):
    """Peak streamline memory per slave stays near N_O x per-curve cost
    (the overload limit is the paper's §4.3 memory guard)."""
    cfg = HybridConfig(overload_limit=12, assignment_quantum=3)
    result, _ = run_traced(problem, hybrid=cfg)
    assert result.ok
    per_curve = problem.cost_model.streamline_overhead_nbytes
    for m in result.rank_metrics[1:]:
        # Generous bound: resident curves (active + finished here) can
        # exceed N_O only by what terminates locally.
        assert m.peak_memory_bytes <= 64 * per_curve \
            + 48 * problem.cost_model.block_nbytes
