"""Unit tests of OnDemandWorker internals."""

import numpy as np
import pytest

from repro.core.ondemand import OnDemandWorker, seeds_grouped_by_block
from repro.core.problem import ProblemSpec
from repro.fields import UniformField
from repro.mesh.bounds import Bounds
from repro.sim.cluster import Cluster
from repro.sim.machine import MachineSpec
from repro.storage.costmodel import DataCostModel
from repro.storage.store import BlockStore


def make_worker(n_ranks=2, rank=0, seeds=None):
    field = UniformField(velocity=(1.0, 0.0, 0.0),
                         domain=Bounds.cube(0.0, 1.0))
    if seeds is None:
        seeds = np.array([
            [0.1, 0.1, 0.1],   # block 0
            [0.6, 0.1, 0.1],   # block 1
            [0.1, 0.6, 0.1],   # block 2
            [0.6, 0.6, 0.6],   # block 7
        ])
    problem = ProblemSpec(
        field=field, seeds=seeds,
        blocks_per_axis=(2, 2, 2), cells_per_block=(3, 3, 3),
        cost_model=DataCostModel(modelled_cells_per_block=1000))
    cluster = Cluster(MachineSpec(n_ranks=n_ranks, cache_blocks=2))
    store = BlockStore(field, problem.decomposition)
    return cluster, problem, OnDemandWorker(cluster.context(rank),
                                            problem, store)


def test_seed_setup_takes_contiguous_grouped_chunk():
    cluster, problem, w0 = make_worker(n_ranks=2, rank=0)
    _, _, w1 = make_worker(n_ranks=2, rank=1)
    w0._setup_seeds()
    w1._setup_seeds()
    n0 = sum(len(v) for v in w0.waiting.values())
    n1 = sum(len(v) for v in w1.waiting.values())
    assert n0 + n1 == problem.n_seeds
    assert abs(n0 - n1) <= 1
    # Grouped: each worker's seeds are contiguous in block order.
    order = seeds_grouped_by_block(problem)
    assert list(order) == sorted(order,
                                 key=lambda i: problem.seed_blocks[i])


def test_next_block_to_load_prefers_most_demanded():
    cluster, problem, w = make_worker(n_ranks=1)
    w._setup_seeds()
    # All four seeds wait; each block has one => lowest id wins ties.
    assert w._next_block_to_load() == 0
    # Stack two more lines into block 7.
    from repro.integrate.streamline import Streamline
    for sid in (10, 11):
        line = Streamline(sid=sid, seed=np.array([0.6, 0.6, 0.6]),
                          block_id=7)
        w.own_line(line)
        w.waiting.setdefault(7, []).append(line)
    assert w._next_block_to_load() == 7


def test_full_run_completes_all(capsys):
    cluster, problem, w = make_worker(n_ranks=1)
    cluster.engine.spawn("w", w.run())
    cluster.run()
    assert len(w.done_lines) == problem.n_seeds
    assert not w.waiting and not w.ready
    # With cache_blocks=2 and 4+ blocks needed, purges happened.
    m = cluster.metrics[0]
    assert m.blocks_loaded > 0
    assert m.blocks_loaded - m.blocks_purged <= 2
