"""Tests of the Hybrid Master/Slave algorithm."""

import numpy as np
import pytest

import repro
from repro.core.config import HybridConfig
from repro.core.driver import run_streamlines
from repro.core.hybrid_master import SlaveRecord
from repro.fields import SupernovaField
from repro.integrate import IntegratorConfig
from repro.seeding import dense_cluster_seeds, sparse_random_seeds
from repro.sim.machine import MachineSpec
from repro.sim.trace import Trace


@pytest.fixture(scope="module")
def problem():
    field = SupernovaField()
    seeds = sparse_random_seeds(
        field.domain.subbox((0.2, 0.2, 0.2), (0.8, 0.8, 0.8)), 40,
        seed=11)
    return repro.ProblemSpec(
        field=field, seeds=seeds,
        blocks_per_axis=(4, 4, 4), cells_per_block=(6, 6, 6),
        integ=IntegratorConfig(max_steps=100, rtol=1e-5, atol=1e-7))


# --------------------------------------------------------------------- #
# Config
# --------------------------------------------------------------------- #
def test_hybrid_config_defaults_match_paper():
    cfg = HybridConfig()
    assert cfg.assignment_quantum == 10     # N = 10
    assert cfg.overload_limit == 200        # N_O = 20 x N
    assert cfg.load_threshold == 40         # N_L = 40
    assert cfg.slaves_per_master == 32      # W = 32


def test_hybrid_config_validation():
    with pytest.raises(ValueError):
        HybridConfig(assignment_quantum=0)
    with pytest.raises(ValueError):
        HybridConfig(overload_limit=5, assignment_quantum=10)
    with pytest.raises(ValueError):
        HybridConfig(load_threshold=0)
    with pytest.raises(ValueError):
        HybridConfig(slaves_per_master=0)


def test_n_masters_scaling():
    cfg = HybridConfig()  # W = 32
    assert cfg.n_masters(2) == 1
    assert cfg.n_masters(33) == 1
    assert cfg.n_masters(66) == 2
    assert cfg.n_masters(264) == 8
    with pytest.raises(ValueError):
        cfg.n_masters(1)


def test_n_masters_leaves_a_slave():
    cfg = HybridConfig(slaves_per_master=1)
    assert cfg.n_masters(2) == 1  # cannot be 2 masters 0 slaves


# --------------------------------------------------------------------- #
# SlaveRecord
# --------------------------------------------------------------------- #
def test_slave_record_waiting_blocks_ordering():
    r = SlaveRecord(rank=1, lines_by_block={3: 5, 7: 5, 2: 9, 4: 0},
                    loaded={7})
    # Block 7 is loaded (excluded); 2 has most; tie between none.
    assert r.waiting_blocks() == [(9, 2), (5, 3)]
    assert r.total_lines == 19


# --------------------------------------------------------------------- #
# End-to-end behaviour
# --------------------------------------------------------------------- #
def test_multiple_masters(problem):
    cfg = HybridConfig(slaves_per_master=3, seed=1)
    machine = MachineSpec(n_ranks=12)
    assert cfg.n_masters(12) == 3
    result = run_streamlines(problem, algorithm="hybrid",
                             machine=machine, hybrid=cfg)
    assert result.ok
    assert len(result.streamlines) == problem.n_seeds
    # Masters (ranks 0-2) never advect.
    for rank in range(3):
        assert result.rank_metrics[rank].steps == 0


def test_masters_do_no_io(problem):
    result = run_streamlines(problem, algorithm="hybrid",
                             machine=MachineSpec(n_ranks=8))
    # One master at 8 ranks: rank 0.
    assert result.rank_metrics[0].io_time == 0.0
    assert result.rank_metrics[0].blocks_loaded == 0


def test_work_spreads_across_slaves(problem):
    """Unlike Static with dense seeds, the hybrid algorithm spreads a
    dense cluster's compute over many slaves."""
    dense = problem.with_seeds(dense_cluster_seeds(
        (0.4, 0.4, 0.4), 0.02, 60, seed=2,
        clip_bounds=problem.field.domain))
    cfg = HybridConfig(assignment_quantum=5, overload_limit=15)
    result = run_streamlines(dense, algorithm="hybrid",
                             machine=MachineSpec(n_ranks=8), hybrid=cfg)
    assert result.ok
    busy_slaves = sum(1 for m in result.rank_metrics[1:] if m.steps > 0)
    assert busy_slaves >= 4

    static = run_streamlines(dense, algorithm="static",
                             machine=MachineSpec(n_ranks=8))
    hybrid_max = max(m.steps for m in result.rank_metrics)
    static_max = max(m.steps for m in static.rank_metrics)
    assert hybrid_max < static_max  # better balance


def test_overload_limit_bounds_assignment(problem):
    """No slave's resident streamline count may exceed N_O by more than
    one in-flight assignment quantum."""
    cfg = HybridConfig(assignment_quantum=4, overload_limit=8, seed=3)
    trace = Trace(enabled=True)
    result = run_streamlines(problem, algorithm="hybrid",
                             machine=MachineSpec(n_ranks=6),
                             hybrid=cfg, trace=trace)
    assert result.ok
    # The master never Send_forces onto a slave beyond the limit: verify
    # via assignments in the trace (each assign is <= N seeds).
    for record in trace.select(event="assign"):
        assert record.get("n") <= cfg.assignment_quantum


def test_compact_communication_reduces_bytes(problem):
    full = run_streamlines(problem, algorithm="hybrid",
                           machine=MachineSpec(n_ranks=8),
                           hybrid=HybridConfig())
    compact = run_streamlines(problem, algorithm="hybrid",
                              machine=MachineSpec(n_ranks=8),
                              hybrid=HybridConfig(
                                  compact_communication=True))
    assert compact.ok and full.ok
    # Geometry still identical: compact mode only changes wire pricing.
    for a, b in zip(full.streamlines, compact.streamlines):
        assert np.allclose(a.vertices(), b.vertices(), atol=1e-13)
    assert compact.bytes_sent <= full.bytes_sent


def test_hint_rule_deterministic_seed(problem):
    a = run_streamlines(problem, algorithm="hybrid",
                        machine=MachineSpec(n_ranks=8),
                        hybrid=HybridConfig(seed=5))
    b = run_streamlines(problem, algorithm="hybrid",
                        machine=MachineSpec(n_ranks=8),
                        hybrid=HybridConfig(seed=5))
    assert a.wall_clock == b.wall_clock
    assert a.messages_sent == b.messages_sent


def test_trace_contains_rule_events(problem):
    trace = Trace(enabled=True)
    run_streamlines(problem, algorithm="hybrid",
                    machine=MachineSpec(n_ranks=6), trace=trace)
    counts = trace.counts()
    assert counts.get("assign", 0) > 0      # Assign rules fired
    # Load / send_force / send_hint fire depending on dynamics; at least
    # one of the rebalancing rules must have fired for wandering curves.
    assert counts.get("load_rule", 0) + counts.get("send_force", 0) \
        + counts.get("send_hint", 0) > 0
