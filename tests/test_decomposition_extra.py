"""Additional decomposition coverage: asymmetric grids and iteration."""

import numpy as np
import pytest

from repro.mesh.bounds import Bounds
from repro.mesh.decomposition import Decomposition


def test_single_block_decomposition():
    dec = Decomposition(Bounds.cube(0.0, 1.0), (1, 1, 1), (4, 4, 4))
    assert dec.n_blocks == 1
    assert dec.info(0).bounds == dec.domain
    assert dec.locate(np.array([0.5, 0.5, 0.5])) == 0


def test_anisotropic_blocks_and_cells():
    dec = Decomposition(Bounds((0, 0, 0), (4.0, 2.0, 1.0)),
                        (4, 2, 1), (10, 5, 2))
    assert dec.n_blocks == 8
    info = dec.info(dec.linear_id(3, 1, 0))
    assert np.allclose(info.bounds.lo_array, [3.0, 1.0, 0.0])
    assert np.allclose(info.bounds.hi_array, [4.0, 2.0, 1.0])
    assert info.node_dims == (11, 6, 3)
    assert dec.global_cell_dims == (40, 10, 2)


def test_info_iteration_order_is_linear_ids():
    dec = Decomposition(Bounds.cube(0.0, 1.0), (2, 3, 2), (2, 2, 2))
    ids = [info.block_id for info in dec]
    assert ids == list(range(12))
    assert dec.infos[5].block_id == 5


def test_negative_domain_coordinates():
    dec = Decomposition(Bounds.cube(-8.0, 8.0), (4, 4, 4), (3, 3, 3))
    assert dec.locate(np.array([-7.9, -7.9, -7.9])) == 0
    assert dec.locate(np.array([7.9, 7.9, 7.9])) == 63
    for bid in (0, 21, 63):
        assert dec.info(bid).bounds.contains(dec.info(bid).bounds.center)


def test_paper_scale_decomposition():
    """The evaluation's 512-block layout."""
    dec = Decomposition(Bounds.cube(-1.0, 1.0), (8, 8, 8), (8, 8, 8))
    assert dec.n_blocks == 512
    # Every block has equal volume.
    vols = {round(info.bounds.volume, 12) for info in dec}
    assert len(vols) == 1
    assert dec.global_cell_dims == (64, 64, 64)
