"""Regenerate ``golden_pool_trajectories.npz``.

Records reference trajectories for ``tests/test_kernel_equivalence.py``.
Only rerun this when the *simulated* advection semantics intentionally
change (new clipping rules, a different tableau, ...) — never to paper
over an unintended numeric drift, which is exactly what the golden test
exists to catch.  The committed fixture was produced by the
pre-kernel-overhaul implementation.

    PYTHONPATH=src python tests/data/make_golden_pool_trajectories.py
"""

import sys
from pathlib import Path

import numpy as np

if __package__ in (None, ""):  # running as a script
    _src = Path(__file__).resolve().parents[2] / "src"
    if str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

from repro.fields import SupernovaField, sample_field
from repro.fields.library import RigidRotationField
from repro.integrate.config import IntegratorConfig
from repro.integrate.dopri5 import Dopri5
from repro.integrate.fixed import make_integrator
from repro.integrate.pooled import BlockPool, advance_pool
from repro.integrate.streamline import make_streamlines
from repro.mesh.bounds import Bounds
from repro.mesh.decomposition import Decomposition

OUT = Path(__file__).parent / "golden_pool_trajectories.npz"


def record(name, field, counts, dims, integ, cfg, seeds, store):
    dec = Decomposition(field.domain, counts, dims)
    pool = BlockPool(list(sample_field(field, dec).values()))
    lines = make_streamlines(seeds)
    for line in lines:
        line.block_id = int(dec.locate(line.position))
    active = list(lines)
    for _ in range(400):
        if not active:
            break
        res = advance_pool(active, pool, field.domain, dec, integ, cfg,
                           round_limit=24)
        active = res.in_pool + list(res.exited)
    store[f"{name}_seeds"] = seeds
    store[f"{name}_status"] = np.array([l.status.value for l in lines])
    store[f"{name}_steps"] = np.array([l.steps for l in lines])
    store[f"{name}_h"] = np.array([l.h for l in lines])
    store[f"{name}_time"] = np.array([l.time for l in lines])
    store[f"{name}_pos"] = np.stack([l.position for l in lines])
    store[f"{name}_verts"] = np.concatenate(
        [l.vertices() for l in lines])
    store[f"{name}_vcounts"] = np.array([l.n_vertices for l in lines])
    print(f"{name}: {len(lines)} lines, "
          f"{store[f'{name}_verts'].shape[0]} vertices")


def _seeds(name, rng, shape, span):
    """Reuse the committed fixture's seed points when present, so a
    regeneration with unchanged semantics reproduces the same data."""
    if OUT.exists():
        with np.load(OUT) as old:
            key = f"{name}_seeds"
            if key in old.files:
                return old[key]
    return rng.uniform(-span, span, size=shape)


def main() -> int:
    store = {}
    rot = RigidRotationField(domain=Bounds.cube(-1.0, 1.0))
    astro = SupernovaField()
    rng = np.random.default_rng(2026)
    record("rot_dopri5", rot, (4, 4, 4), (8, 8, 8), Dopri5(1e-5, 1e-7),
           IntegratorConfig(max_steps=220, h_max=0.03,
                            rtol=1e-5, atol=1e-7),
           _seeds("rot_dopri5", rng, (17, 3), 0.9), store)
    record("astro_dopri5", astro, (8, 8, 8), (8, 8, 8),
           Dopri5(1e-5, 1e-7),
           IntegratorConfig(max_steps=300, h_max=0.045,
                            rtol=1e-5, atol=1e-7),
           _seeds("astro_dopri5", rng, (23, 3), 0.85), store)
    record("rot_rk4", rot, (4, 4, 4), (8, 8, 8), make_integrator("rk4"),
           IntegratorConfig(max_steps=150, h_max=0.02),
           _seeds("rot_rk4", rng, (5, 3), 0.9), store)
    np.savez_compressed(OUT, **store)
    print(f"wrote {OUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
