"""Trace analytics: critical path, imbalance, handoff diagnostics."""

import json

import pytest

from repro.core.driver import run_streamlines
from repro.obs import Recorder, analyze_dir, analyze_run, critical_path, gini
from repro.obs.analyze import (
    RUN_SCHEMA,
    block_efficiency_series,
    imbalance_stats,
    leaf_kind,
    path_breakdown,
)
from repro.obs.export import (
    write_run_json,
    write_samples_jsonl,
    write_spans_jsonl,
)
from repro.obs.span import SpanRecord


def rec(rank, name, start, end):
    return SpanRecord(rank=rank, name=name, start=start, end=end,
                      depth=0, attrs=())


# ---------------------------------------------------------------------- #
# Critical path on synthetic span sets
# ---------------------------------------------------------------------- #

def test_leaf_kind_classification():
    assert leaf_kind("compute.advect") == "compute"
    assert leaf_kind("io.read") == "io"
    assert leaf_kind("comm.send") == "comm"
    assert leaf_kind("io.load_block") is None  # container
    assert leaf_kind("wait.message") is None   # derived, not consumed
    assert leaf_kind("master.assign_pass") is None


def test_critical_path_empty_run_is_all_idle():
    segs = critical_path([], wall_clock=3.0)
    assert len(segs) == 1
    assert segs[0].kind == "idle"
    assert segs[0].duration == pytest.approx(3.0)


def test_critical_path_single_span_tiles_wall():
    segs = critical_path([rec(0, "compute.advect", 0.0, 5.0)], 5.0)
    assert [s.kind for s in segs] == ["compute"]
    assert segs[0].start == 0.0 and segs[0].end == 5.0


def test_critical_path_gap_becomes_idle():
    spans = [rec(0, "compute.advect", 0.0, 2.0),
             rec(1, "io.read", 3.0, 5.0)]
    segs = critical_path(spans, 5.0)
    assert [(s.kind, s.start, s.end) for s in segs] == [
        ("compute", 0.0, 2.0), ("idle", 2.0, 3.0), ("io", 3.0, 5.0)]
    assert sum(s.duration for s in segs) == pytest.approx(5.0)


def test_critical_path_hops_to_latest_starting_dependency():
    # Rank 1's io gated the tail; the walk must hop onto it at t=6, then
    # back to rank 0's long compute span underneath.
    spans = [rec(0, "compute.advect", 0.0, 4.0),
             rec(1, "io.read", 4.0, 6.0),
             rec(0, "compute.advect", 6.0, 7.0)]
    segs = critical_path(spans, 7.0)
    assert [(s.kind, s.rank) for s in segs] == [
        ("compute", 0), ("io", 1), ("compute", 0)]
    assert sum(s.duration for s in segs) == pytest.approx(7.0)


def test_critical_path_segments_are_contiguous_and_ordered():
    spans = [rec(r, "compute.step", r * 1.0, r * 1.0 + 1.5)
             for r in range(4)]
    segs = critical_path(spans, 5.0)
    assert segs[0].start == 0.0
    assert segs[-1].end == pytest.approx(5.0)
    for a, b in zip(segs, segs[1:]):
        assert a.end == pytest.approx(b.start)


def test_path_breakdown_has_all_kinds():
    segs = critical_path([rec(0, "compute.advect", 0.0, 1.0)], 2.0)
    bd = path_breakdown(segs)
    assert set(bd) == {"compute", "io", "comm", "idle"}
    assert sum(bd.values()) == pytest.approx(2.0)


# ---------------------------------------------------------------------- #
# Imbalance statistics
# ---------------------------------------------------------------------- #

def test_gini_extremes():
    assert gini([]) == 0.0
    assert gini([5.0, 5.0, 5.0, 5.0]) == pytest.approx(0.0)
    assert gini([0.0, 0.0, 0.0, 10.0]) == pytest.approx(0.75)  # (n-1)/n
    assert gini([0.0, 0.0]) == 0.0  # zero total: equal by convention


def test_imbalance_stats_empty_rows():
    stats = imbalance_stats([], 1.0)
    assert stats["imbalance_factor"] == 1.0
    assert stats["gini_steps"] == 0.0


def test_imbalance_stats_factor_and_idle():
    rows = [
        {"compute_time": 4.0, "io_time": 0.0, "comm_time": 0.0,
         "other_time": 0.0, "steps": 100},
        {"compute_time": 2.0, "io_time": 0.0, "comm_time": 0.0,
         "other_time": 0.0, "steps": 50},
    ]
    stats = imbalance_stats(rows, wall_clock=4.0)
    assert stats["busy_max"] == pytest.approx(4.0)
    assert stats["busy_mean"] == pytest.approx(3.0)
    assert stats["imbalance_factor"] == pytest.approx(4.0 / 3.0)
    assert stats["idle_fraction"] == pytest.approx(0.25)


def test_block_efficiency_series_from_machine_gauges():
    samples = [
        (0.0, "run.blocks_loaded", -1, 0.0),
        (0.0, "run.blocks_purged", -1, 0.0),
        (1.0, "run.blocks_loaded", -1, 10.0),
        (1.0, "run.blocks_purged", -1, 2.0),
        (1.0, "rank.cache_blocks", 3, 7.0),  # per-rank rows are ignored
    ]
    series = block_efficiency_series(samples)
    assert series == [(0.0, 1.0), (1.0, pytest.approx(0.8))]


# ---------------------------------------------------------------------- #
# Live runs: the headline invariant and the handoff diagnostics
# ---------------------------------------------------------------------- #

@pytest.mark.parametrize("algorithm", ["static", "ondemand", "hybrid"])
def test_critical_path_sums_to_wall_clock(small_problem, small_machine,
                                          algorithm):
    obs = Recorder(enabled=True, sample_interval=0.5)
    result = run_streamlines(small_problem, algorithm=algorithm,
                             machine=small_machine, obs=obs)
    analysis = analyze_run(result, obs)
    assert abs(analysis.path_total - result.wall_clock) < 1e-6
    assert analysis.segments[0].start == 0.0
    assert analysis.segments[-1].end == pytest.approx(result.wall_clock)


def test_ondemand_never_ping_pongs(small_problem, small_machine):
    obs = Recorder(enabled=True)
    result = run_streamlines(small_problem, algorithm="ondemand",
                             machine=small_machine, obs=obs)
    analysis = analyze_run(result, obs)
    # Load-on-demand moves blocks, never streamlines.
    assert analysis.lines_received == 0
    assert analysis.pingpong_count == 0
    assert analysis.participation_ratio == pytest.approx(1.0)


def test_static_counts_handoffs(small_problem, small_machine):
    obs = Recorder(enabled=True)
    result = run_streamlines(small_problem, algorithm="static",
                             machine=small_machine, obs=obs)
    analysis = analyze_run(result, obs)
    # Parallelize-over-data must ship lines across ownership boundaries.
    assert analysis.lines_received > 0
    assert analysis.pingpong_count <= analysis.lines_received
    assert result.lines_received == analysis.lines_received
    assert result.pingpong_count == analysis.pingpong_count


def test_analysis_to_dict_has_diffable_scalars(small_problem,
                                               small_machine):
    obs = Recorder(enabled=True, sample_interval=0.5)
    result = run_streamlines(small_problem, algorithm="hybrid",
                             machine=small_machine, obs=obs)
    d = analyze_run(result, obs).to_dict()
    assert d["schema"] == RUN_SCHEMA
    for key in ("wall_clock", "io_time", "comm_time", "compute_time",
                "block_efficiency", "participation_ratio",
                "pingpong_count", "critical_path"):
        assert key in d, key
    assert set(d["critical_path"]) == {"compute", "io", "comm", "idle"}
    json.dumps(d)  # must be JSON-ready as-is


# ---------------------------------------------------------------------- #
# Artifact-directory analysis (the `repro analyze <dir>` path)
# ---------------------------------------------------------------------- #

def test_analyze_dir_round_trips_live_analysis(tmp_path, small_problem,
                                               small_machine):
    obs = Recorder(enabled=True, sample_interval=0.5)
    result = run_streamlines(small_problem, algorithm="hybrid",
                             machine=small_machine, obs=obs)
    write_run_json(tmp_path / "run.json", result, obs)
    write_spans_jsonl(tmp_path / "spans.jsonl", obs)
    write_samples_jsonl(tmp_path / "samples.jsonl", obs)

    live = analyze_run(result, obs)
    loaded = analyze_dir(tmp_path)
    assert loaded.to_dict() == live.to_dict()
    assert loaded.waits == live.waits


def test_analyze_dir_requires_run_json(tmp_path):
    with pytest.raises(FileNotFoundError):
        analyze_dir(tmp_path)


def test_analyze_dir_rejects_unknown_schema(tmp_path):
    (tmp_path / "run.json").write_text(json.dumps({"schema": 999}))
    with pytest.raises(ValueError):
        analyze_dir(tmp_path)
