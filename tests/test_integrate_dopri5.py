"""Tests of the Dormand-Prince integrator against analytic solutions."""

import numpy as np
import pytest

from repro.fields.library import (
    RigidRotationField,
    SaddleField,
    SourceField,
    UniformField,
)
from repro.integrate.base import Integrator
from repro.integrate.config import IntegratorConfig
from repro.integrate.dopri5 import Dopri5
from repro.integrate.fixed import RK4, Euler


def step_to_time(integrator, field, y0, t_end, cfg):
    """Drive a single particle to t_end with adaptive control."""
    pos = np.array([y0], dtype=np.float64)
    t = 0.0
    h = np.array([cfg.h_init])
    while t < t_end - 1e-12:
        h[0] = min(h[0], t_end - t)
        new_pos, err = integrator.attempt_steps(field.evaluate, pos, h)
        if not integrator.adaptive or err[0] <= 1.0:
            pos = new_pos
            t += h[0]
        h = Integrator.adapt_h(h, err, integrator.order, cfg)
    return pos[0]


@pytest.fixture
def cfg():
    return IntegratorConfig(rtol=1e-8, atol=1e-10, h_init=0.01,
                            h_max=0.1)


def test_exponential_growth_exact(cfg):
    """Source field: y' = y, solution y0 * e^t."""
    f = SourceField(strength=1.0)
    y = step_to_time(Dopri5(cfg.rtol, cfg.atol), f,
                     [0.1, 0.05, 0.0], 1.0, cfg)
    assert np.allclose(y, np.array([0.1, 0.05, 0.0]) * np.e, rtol=1e-7)


def test_rotation_returns_after_full_period(cfg):
    f = RigidRotationField(omega=1.0)
    y0 = [0.5, 0.0, 0.25]
    y = step_to_time(Dopri5(cfg.rtol, cfg.atol), f, y0,
                     2.0 * np.pi, cfg)
    assert np.allclose(y, y0, atol=1e-6)


def test_saddle_solution(cfg):
    f = SaddleField(expand=1.0, contract=1.0)
    y = step_to_time(Dopri5(cfg.rtol, cfg.atol), f,
                     [0.1, 0.2, 0.3], 0.5, cfg)
    expect = np.array([0.1 * np.exp(0.5), 0.2 * np.exp(-0.5),
                       0.3 * np.exp(-0.5)])
    assert np.allclose(y, expect, rtol=1e-7)


def test_uniform_field_is_exact_per_step():
    f = UniformField(velocity=(1.0, 2.0, 3.0))
    d = Dopri5()
    pos = np.zeros((4, 3))
    h = np.full(4, 0.25)
    new_pos, err = d.attempt_steps(f.evaluate, pos, h)
    assert np.allclose(new_pos, 0.25 * np.array([1.0, 2.0, 3.0]))
    assert np.all(err < 1e-9)


def test_error_estimate_drives_rejection():
    """A stiff nonlinear field at a huge step must report err > 1."""
    class Stiff:
        def evaluate(self, pts):
            return np.sin(50.0 * pts) * 10.0

    d = Dopri5(rtol=1e-10, atol=1e-12)
    pos = np.array([[0.1, 0.2, 0.3]])
    _, err = d.attempt_steps(Stiff().evaluate, pos, np.array([0.5]))
    assert err[0] > 1.0


def test_batch_matches_individual():
    """Batched stepping must equal stepping each particle alone."""
    f = RigidRotationField()
    d = Dopri5()
    rng = np.random.default_rng(0)
    pos = rng.uniform(-0.5, 0.5, size=(8, 3))
    h = rng.uniform(0.01, 0.1, size=8)
    batch_pos, batch_err = d.attempt_steps(f.evaluate, pos, h)
    for i in range(8):
        p1, e1 = d.attempt_steps(f.evaluate, pos[i:i + 1], h[i:i + 1])
        assert np.allclose(p1[0], batch_pos[i], atol=1e-15)
        assert np.allclose(e1[0], batch_err[i], atol=1e-15)


def test_fifth_order_convergence():
    """Halving h must cut the local error by ~2^5."""
    class Nonlinear:
        def evaluate(self, pts):
            return np.stack([pts[:, 1] ** 2 + 1.0,
                             -pts[:, 0] * pts[:, 1],
                             pts[:, 2] * 0.0 + np.cos(pts[:, 0])], axis=1)

    f = Nonlinear()
    d = Dopri5()

    def one_step_error(h):
        y0 = np.array([[0.3, 0.4, 0.1]])
        coarse, _ = d.attempt_steps(f.evaluate, y0, np.array([h]))
        fine = y0
        for _ in range(64):
            fine, _ = d.attempt_steps(f.evaluate, fine,
                                      np.array([h / 64]))
        return np.linalg.norm(coarse - fine)

    e1 = one_step_error(0.2)
    e2 = one_step_error(0.1)
    ratio = e1 / e2
    assert 15.0 < ratio < 150.0  # ~2^5 = 32 with generous slack


def test_adapt_h_grows_and_shrinks():
    cfg = IntegratorConfig()
    h = np.array([0.01, 0.01])
    err = np.array([1e-6, 100.0])
    new_h = Integrator.adapt_h(h, err, 5, cfg)
    assert new_h[0] > h[0]  # tiny error -> grow
    assert new_h[1] < h[1]  # big error -> shrink
    assert np.all(new_h <= cfg.h_max)
    assert np.all(new_h >= cfg.h_min)


def test_shape_validation():
    d = Dopri5()
    f = UniformField().evaluate
    with pytest.raises(ValueError):
        d.attempt_steps(f, np.zeros(3), np.zeros(1))
    with pytest.raises(ValueError):
        d.attempt_steps(f, np.zeros((2, 3)), np.zeros(3))


def test_invalid_tolerances():
    with pytest.raises(ValueError):
        Dopri5(rtol=0.0)
    with pytest.raises(ValueError):
        Dopri5(atol=-1.0)


def test_rk4_fourth_order_convergence():
    f = RigidRotationField()
    rk4 = RK4()

    def err_at(h):
        y0 = np.array([[0.5, 0.0, 0.0]])
        y, _ = rk4.attempt_steps(f.evaluate, y0, np.array([h]))
        exact = np.array([0.5 * np.cos(h), 0.5 * np.sin(h), 0.0])
        return np.linalg.norm(y[0] - exact)

    ratio = err_at(0.2) / err_at(0.1)
    assert 20.0 < ratio < 45.0  # ~2^5 local truncation of RK4


def test_euler_first_order():
    f = SourceField()
    e = Euler()
    y, err = e.attempt_steps(f.evaluate, np.array([[1.0, 0.0, 0.0]]),
                             np.array([0.1]))
    assert np.allclose(y, [[1.1, 0.0, 0.0]])
    assert np.all(err == 0.0)
