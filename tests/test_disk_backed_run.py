"""End-to-end run against real on-disk block files.

Proves the algorithms are agnostic to the block provider: materialize
the dataset to disk with the RPB1 format, reload it through
DiskBlockStore, and get bit-identical results to the analytic-backed run.
"""

import numpy as np
import pytest

import repro
from repro.core.driver import run_streamlines
from repro.fields import SupernovaField
from repro.integrate import IntegratorConfig
from repro.seeding import sparse_random_seeds
from repro.sim.machine import MachineSpec
from repro.storage.store import BlockStore, DiskBlockStore


@pytest.fixture(scope="module")
def problem():
    field = SupernovaField()
    seeds = sparse_random_seeds(
        field.domain.subbox((0.25, 0.25, 0.25), (0.75, 0.75, 0.75)), 8,
        seed=3)
    return repro.ProblemSpec(
        field=field, seeds=seeds,
        blocks_per_axis=(2, 2, 2), cells_per_block=(5, 5, 5),
        integ=IntegratorConfig(max_steps=50, rtol=1e-4, atol=1e-6))


def test_disk_backed_run_matches_analytic(problem, tmp_path):
    analytic_store = BlockStore(problem.field, problem.decomposition)
    disk = DiskBlockStore.write(analytic_store, tmp_path / "blocks")

    machine = MachineSpec(n_ranks=4)
    a = run_streamlines(problem, algorithm="ondemand", machine=machine)
    b = run_streamlines(problem, algorithm="ondemand", machine=machine,
                        store=disk)
    assert a.ok and b.ok
    for la, lb in zip(a.streamlines, b.streamlines):
        assert la.status == lb.status
        assert np.array_equal(la.vertices(), lb.vertices())
    # Identical simulated schedule too (same priced operations).
    assert a.wall_clock == b.wall_clock
    assert a.io_time == b.io_time


def test_disk_backed_hybrid(problem, tmp_path):
    analytic_store = BlockStore(problem.field, problem.decomposition)
    disk = DiskBlockStore.write(analytic_store, tmp_path / "blocks")
    result = run_streamlines(problem, algorithm="hybrid",
                             machine=MachineSpec(n_ranks=4), store=disk)
    assert result.ok
    assert len(result.streamlines) == problem.n_seeds
