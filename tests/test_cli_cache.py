"""`repro cache` subcommand and --jobs auto resolution."""

import os
import time
from pathlib import Path

import pytest

from repro.analysis.experiments import (
    cache_entries,
    clear_cache,
    prune_cache,
    run_experiment,
)
from repro.cli import main


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    import repro.analysis.experiments as exp
    exp._DISK_LOADED = False
    clear_cache()
    yield
    clear_cache()
    exp._DISK_LOADED = False


def _seed_entries():
    run_experiment("astro", "sparse", "ondemand", 4, scale=0.02)
    run_experiment("astro", "sparse", "static", 4, scale=0.02)


def test_cache_entries_reports_metadata():
    _seed_entries()
    entries = cache_entries()
    assert len(entries) == 2
    names = {e.name for e in entries}
    assert names == {"astro-sparse-ondemand-4", "astro-sparse-static-4"}
    for e in entries:
        assert e.valid
        assert e.scale == pytest.approx(0.02)
        assert e.elapsed is not None and e.elapsed > 0.0
        assert e.size > 0
        assert e.age >= 0.0


def test_cache_entries_flags_corrupt_and_stale(tmp_path):
    _seed_entries()
    root = cache_entries()[0].path.parent
    (root / "broken.json").write_text("{not json")
    stale = root / "old-layout.json"
    stale.write_text('{"version": 1, "key": {}, "summary": {}}')
    entries = {e.path.name: e for e in cache_entries()}
    assert not entries["broken.json"].valid
    assert not entries["old-layout.json"].valid
    assert entries["old-layout.json"].version == 1


def test_cli_cache_lists_entries(capsys):
    _seed_entries()
    assert main(["cache"]) == 0
    out = capsys.readouterr().out
    assert "astro-sparse-ondemand-4" in out
    assert "2 entries" in out
    assert ".sweep_cache" not in out or "cache" in out  # prints the dir


def test_cli_cache_empty(capsys):
    assert main(["cache"]) == 0
    assert "no entries" in capsys.readouterr().out


def test_cli_cache_prune_requires_selector(capsys):
    assert main(["cache", "--prune"]) == 2
    assert "--older-than" in capsys.readouterr().err


def test_cli_cache_prune_older_than(capsys):
    _seed_entries()
    old = cache_entries()[0].path
    aged = time.time() - 7200  # push one entry two hours into the past
    os.utime(old, (aged, aged))
    assert main(["cache", "--prune", "--older-than", "1h"]) == 0
    assert "pruned 1 entry" in capsys.readouterr().out
    remaining = cache_entries()
    assert len(remaining) == 1
    assert remaining[0].path != old
    # Pruned entries must be really gone for the running process too.
    clear_cache()
    assert len(cache_entries()) == 1


def test_cli_cache_prune_all(capsys):
    _seed_entries()
    assert main(["cache", "--prune", "--all"]) == 0
    assert "pruned 2 entries" in capsys.readouterr().out
    assert cache_entries() == []


def test_prune_cache_age_filter():
    _seed_entries()
    removed, freed = prune_cache(older_than=3600.0)
    assert (removed, freed) == (0, 0)  # everything is fresh
    removed, freed = prune_cache()
    assert removed == 2 and freed > 0


def test_cli_jobs_auto_accepted(capsys):
    code = main(["sweep", "--dataset", "astro", "--seeding", "sparse",
                 "--algorithm", "ondemand", "--ranks", "4",
                 "--scale", "0.02", "--jobs", "auto", "--dry-run"])
    assert code == 0
    assert "predicted total" in capsys.readouterr().out


def test_cli_jobs_rejects_garbage(capsys):
    with pytest.raises(SystemExit):
        main(["sweep", "--jobs", "many"])
    assert "expected an integer or 'auto'" in capsys.readouterr().err


def test_sweep_dataset_jobs_zero_means_auto(monkeypatch):
    """jobs=0 must fan out (one worker per CPU), not silently run
    serial — regression guard for the old `if jobs > 1` test."""
    import repro.analysis.experiments as exp

    seen = {}

    class FakeExecutor:
        def __init__(self, jobs, **kw):
            seen["jobs"] = jobs

        def run(self, specs):
            raise RuntimeError("stop here")

    monkeypatch.setattr(exp.os, "cpu_count", lambda: 3)
    monkeypatch.setattr("repro.exec.SweepExecutor", FakeExecutor)
    with pytest.raises(RuntimeError, match="stop here"):
        exp.sweep_dataset("astro", rank_counts=(4,),
                          algorithms=("ondemand",),
                          seedings=("sparse",), jobs=0, scale=0.02)
    assert seen["jobs"] == 3
