"""Extra determinism and robustness properties of the whole stack."""

import numpy as np
import pytest

import repro
from repro.core.config import HybridConfig
from repro.core.driver import run_streamlines
from repro.fields import SupernovaField, TokamakField
from repro.integrate import IntegratorConfig
from repro.seeding import sparse_random_seeds
from repro.sim.machine import MachineSpec


def make_problem(field_cls=SupernovaField, n=16, seed=77, **integ_kw):
    field = field_cls()
    seeds = sparse_random_seeds(
        field.domain.subbox((0.2, 0.2, 0.2), (0.8, 0.8, 0.8)), n,
        seed=seed)
    integ = IntegratorConfig(max_steps=80, rtol=1e-5, atol=1e-7,
                             **integ_kw)
    return repro.ProblemSpec(field=field, seeds=seeds,
                             blocks_per_axis=(4, 4, 4),
                             cells_per_block=(5, 5, 5), integ=integ)


def test_trace_is_bit_identical_across_runs():
    from repro.sim.trace import Trace

    problem = make_problem()

    def run_once():
        trace = Trace(enabled=True)
        run_streamlines(problem, algorithm="hybrid",
                        machine=MachineSpec(n_ranks=6), trace=trace)
        return [(r.time, r.rank, r.event, r.detail) for r in trace]

    assert run_once() == run_once()


def test_machine_spec_does_not_change_geometry():
    """Cost-model knobs change metrics, never curves."""
    problem = make_problem()
    fast = run_streamlines(problem, algorithm="static",
                           machine=MachineSpec(n_ranks=6))
    slow = run_streamlines(
        problem, algorithm="static",
        machine=MachineSpec(n_ranks=6, seconds_per_step=1.0,
                            io_bandwidth=1e6, comm_latency=0.5))
    assert slow.wall_clock > fast.wall_clock
    for a, b in zip(fast.streamlines, slow.streamlines):
        assert np.array_equal(a.vertices(), b.vertices())


def test_hybrid_config_changes_schedule_not_curves():
    problem = make_problem()
    a = run_streamlines(problem, algorithm="hybrid",
                        machine=MachineSpec(n_ranks=6),
                        hybrid=HybridConfig(assignment_quantum=2))
    b = run_streamlines(problem, algorithm="hybrid",
                        machine=MachineSpec(n_ranks=6),
                        hybrid=HybridConfig(assignment_quantum=8))
    for la, lb in zip(a.streamlines, b.streamlines):
        assert la.status == lb.status
        assert np.allclose(la.vertices(), lb.vertices(), atol=1e-13)


def test_rk4_and_euler_backends_run_end_to_end():
    for name in ("rk4", "euler"):
        field = TokamakField()
        seeds = sparse_random_seeds(
            field.domain.subbox((0.3, 0.3, 0.4), (0.7, 0.7, 0.6)), 8,
            seed=5)
        problem = repro.ProblemSpec(
            field=field, seeds=seeds, blocks_per_axis=(4, 4, 4),
            cells_per_block=(5, 5, 5), integrator=name,
            integ=IntegratorConfig(max_steps=60, h_init=0.02,
                                   h_max=0.02))
        result = run_streamlines(problem, algorithm="ondemand",
                                 machine=MachineSpec(n_ranks=4))
        assert result.ok
        assert all(l.status.terminated for l in result.streamlines)


def test_single_seed_problem():
    problem = make_problem(n=1)
    for algorithm in repro.ALGORITHMS:
        result = run_streamlines(problem, algorithm=algorithm,
                                 machine=MachineSpec(n_ranks=4))
        assert result.ok
        assert len(result.streamlines) == 1


def test_more_ranks_than_seeds():
    problem = make_problem(n=3)
    for algorithm in repro.ALGORITHMS:
        result = run_streamlines(problem, algorithm=algorithm,
                                 machine=MachineSpec(n_ranks=12))
        assert result.ok
        assert len(result.streamlines) == 3


def test_seeds_on_block_faces():
    """Seeds exactly on interior block faces are owned unambiguously."""
    field = SupernovaField()
    # Block faces of a 4^3 decomposition of [-1,1]^3 lie at -0.5, 0, 0.5.
    seeds = np.array([
        [0.0, 0.0, 0.0],
        [0.5, 0.5, 0.5],
        [-0.5, 0.25, 0.25],
        [1.0, 1.0, 1.0],     # domain corner
    ])
    problem = repro.ProblemSpec(
        field=field, seeds=seeds, blocks_per_axis=(4, 4, 4),
        cells_per_block=(5, 5, 5),
        integ=IntegratorConfig(max_steps=40, rtol=1e-4, atol=1e-6))
    for algorithm in repro.ALGORITHMS:
        result = run_streamlines(problem, algorithm=algorithm,
                                 machine=MachineSpec(n_ranks=4))
        assert result.ok
        assert len(result.streamlines) == 4
