"""Tests of the block locator helpers and adjacency topology."""

import numpy as np
import pytest

from repro.mesh.bounds import Bounds
from repro.mesh.decomposition import Decomposition
from repro.mesh.locator import BlockLocator
from repro.mesh.topology import block_adjacency, face_neighbors


@pytest.fixture
def dec():
    return Decomposition(Bounds.cube(0.0, 1.0), (3, 3, 3), (4, 4, 4))


@pytest.fixture
def locator(dec):
    return BlockLocator(dec)


def test_group_by_block(locator, dec):
    pts = np.array([
        [0.1, 0.1, 0.1],   # block 0
        [0.15, 0.1, 0.1],  # block 0
        [0.5, 0.5, 0.5],   # center block
        [9.0, 9.0, 9.0],   # outside
    ])
    groups = locator.group_by_block(pts, np.array([10, 11, 12, 13]))
    assert set(groups[0]) == {10, 11}
    center = int(dec.locate(np.array([0.5, 0.5, 0.5])))
    assert list(groups[center]) == [12]
    assert list(groups[-1]) == [13]


def test_group_by_block_mismatched_ids(locator):
    with pytest.raises(ValueError):
        locator.group_by_block(np.zeros((2, 3)), np.array([1]))


def test_counts_by_block(locator):
    pts = np.array([[0.1, 0.1, 0.1]] * 3 + [[0.9, 0.9, 0.9]])
    counts = locator.counts_by_block(pts)
    assert counts[0] == 3
    assert sum(counts.values()) == 4


def test_face_neighbors_corner_and_center(dec):
    corner = dec.linear_id(0, 0, 0)
    assert len(face_neighbors(dec, corner)) == 3
    center = dec.linear_id(1, 1, 1)
    assert len(face_neighbors(dec, center)) == 6


def test_face_neighbors_are_mutual(dec):
    for bid in range(dec.n_blocks):
        for nbr in face_neighbors(dec, bid):
            assert bid in face_neighbors(dec, nbr)


def test_face_neighbors_share_a_face(dec):
    for bid in (0, 13, 26):
        a = dec.info(bid).bounds
        for nbr in face_neighbors(dec, bid):
            b = dec.info(nbr).bounds
            assert a.intersects(b)
            # Exactly one axis differs in block coords.
            ca = dec.block_coords(bid)
            cb = dec.block_coords(nbr)
            assert sum(x != y for x, y in zip(ca, cb)) == 1


def test_full_adjacency_counts(dec):
    adj = block_adjacency(dec, connectivity="full")
    corner = dec.linear_id(0, 0, 0)
    assert len(adj[corner]) == 7   # 2x2x2 neighbourhood minus itself
    center = dec.linear_id(1, 1, 1)
    assert len(adj[center]) == 26


def test_adjacency_validation(dec):
    with pytest.raises(ValueError):
        block_adjacency(dec, connectivity="diagonal")


def test_networkx_graph_is_connected(dec):
    """The block adjacency graph must be one connected component."""
    import networkx as nx

    g = nx.Graph()
    for bid, nbrs in block_adjacency(dec).items():
        for n in nbrs:
            g.add_edge(bid, n)
    assert g.number_of_nodes() == dec.n_blocks
    assert nx.is_connected(g)
    # A 3x3x3 face-adjacency grid has diameter 6 (corner to corner).
    assert nx.diameter(g) == 6
