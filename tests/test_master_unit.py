"""Unit tests of HybridMaster pool/rule helpers (no simulation)."""

import numpy as np
import pytest

from repro.core.config import HybridConfig
from repro.core.hybrid_master import HybridMaster, SlaveRecord
from repro.core.problem import ProblemSpec
from repro.fields import UniformField
from repro.mesh.bounds import Bounds
from repro.sim.cluster import Cluster
from repro.sim.machine import MachineSpec


def make_master(pool=None, slaves=(1, 2, 3), config=None,
                reseed_budget=0):
    field = UniformField(domain=Bounds.cube(0.0, 1.0))
    problem = ProblemSpec(
        field=field, seeds=np.array([[0.5, 0.5, 0.5]]),
        blocks_per_axis=(2, 2, 2), cells_per_block=(3, 3, 3))
    cluster = Cluster(MachineSpec(n_ranks=4))
    return HybridMaster(cluster.context(0), problem,
                        config or HybridConfig(), slaves=list(slaves),
                        masters=[0], pool=pool or {},
                        reseed_budget=reseed_budget)


def test_pool_block_with_most_seeds():
    pool = {3: [(0, np.zeros(3))],
            5: [(1, np.zeros(3)), (2, np.zeros(3))]}
    m = make_master(pool=pool)
    assert m._pool_block_with_most_seeds() == 5
    assert m.pool_size() == 3


def test_pool_empty():
    m = make_master()
    assert m._pool_block_with_most_seeds() is None
    assert m.pool_size() == 0


def test_take_seeds_drains_block():
    pool = {5: [(i, np.full(3, float(i))) for i in range(5)]}
    m = make_master(pool=pool)
    assign = m._take_seeds(5, 3)
    assert assign.block_id == 5
    assert assign.sids == (0, 1, 2)
    assert assign.seeds.shape == (3, 3)
    assert m.pool_size() == 2
    assign2 = m._take_seeds(5, 10)  # takes the remainder
    assert assign2.sids == (3, 4)
    assert 5 not in m.pool


def test_find_loaded_slave_respects_overload():
    m = make_master(config=HybridConfig(overload_limit=10))
    m.records[1].loaded = {7}
    m.records[1].advanceable = 9
    m.records[2].loaded = {7}
    m.records[2].advanceable = 2
    # Incoming 3: slave 1 would exceed N_O (9+3 > 10); slave 2 fits.
    t = m._find_loaded_slave(7, exclude=3, incoming=3)
    assert t is not None and t.rank == 2
    # Incoming 9: nobody fits.
    assert m._find_loaded_slave(7, exclude=3, incoming=9) is None


def test_find_loaded_slave_prefers_least_loaded():
    m = make_master()
    for r, load in ((1, 5), (2, 1), (3, 3)):
        m.records[r].loaded = {4}
        m.records[r].advanceable = load
    t = m._find_loaded_slave(4, exclude=0, incoming=1)
    assert t.rank == 2


def test_accept_new_seeds_budget_and_domain():
    m = make_master(reseed_budget=3)
    seeds = np.array([
        [0.2, 0.2, 0.2],    # in
        [5.0, 5.0, 5.0],    # out of domain -> dropped
        [0.8, 0.8, 0.8],    # in
        [0.1, 0.9, 0.1],    # beyond budget after the drop? budget=3 evals
        [0.3, 0.3, 0.3],    # beyond budget
    ])
    m._accept_new_seeds(seeds)
    # Budget 3 evaluations: seeds[0] admitted, seeds[1] dropped,
    # seeds[2] admitted -> 2 admitted, target grows by 2.
    assert m.pool_size() == 2
    assert m._target_delta == 2
    assert m._reseed_remaining == 0
    # Further seeds are ignored entirely.
    m._accept_new_seeds(np.array([[0.5, 0.5, 0.5]]))
    assert m.pool_size() == 2


def test_dynamic_sids_unique_per_master():
    m = make_master(reseed_budget=10)
    m._accept_new_seeds(np.array([[0.2, 0.2, 0.2], [0.3, 0.3, 0.3]]))
    sids = [sid for entries in m.pool.values() for sid, _ in entries]
    assert len(set(sids)) == 2
    assert all(s >= 1_000_000 for s in sids)


def test_cache_capacity_helper():
    m = make_master()
    assert m._cache_capacity() == m.ctx.spec.cache_blocks
