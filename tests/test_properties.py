"""Property-based tests (hypothesis) on core data structures/invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.base import owner_of_block, partition_contiguous
from repro.mesh.bounds import Bounds
from repro.mesh.decomposition import Decomposition
from repro.mesh.interpolate import trilinear
from repro.integrate.base import Integrator
from repro.integrate.config import IntegratorConfig
from repro.storage.cache import LRUBlockCache


# --------------------------------------------------------------------- #
# Partitioning
# --------------------------------------------------------------------- #
@given(n_items=st.integers(1, 2000), n_parts=st.integers(1, 128))
def test_partition_exact_cover(n_items, n_parts):
    total = 0
    prev_end = 0
    for part in range(n_parts):
        r = partition_contiguous(n_items, n_parts, part)
        assert r.start == prev_end
        prev_end = r.stop
        total += len(r)
    assert prev_end == n_items
    assert total == n_items


@given(n_blocks=st.integers(1, 600), n_ranks=st.integers(1, 600))
def test_owner_is_consistent_with_partition(n_blocks, n_ranks):
    for bid in range(0, n_blocks, max(1, n_blocks // 17)):
        owner = owner_of_block(bid, n_blocks, n_ranks)
        assert bid in partition_contiguous(n_blocks, n_ranks, owner)


# --------------------------------------------------------------------- #
# Bounds / decomposition
# --------------------------------------------------------------------- #
coords = st.floats(min_value=-50.0, max_value=50.0,
                   allow_nan=False, allow_infinity=False)


@given(lo=st.tuples(coords, coords, coords),
       size=st.tuples(st.floats(0.1, 10), st.floats(0.1, 10),
                      st.floats(0.1, 10)),
       u=st.tuples(st.floats(0, 1), st.floats(0, 1), st.floats(0, 1)))
def test_bounds_normalize_roundtrip(lo, size, u):
    b = Bounds.from_arrays(lo, np.asarray(lo) + np.asarray(size))
    p = b.denormalized(np.asarray(u))
    assert b.contains(p)
    back = b.normalized(p)
    assert np.allclose(back, u, atol=1e-9)


@given(bx=st.integers(1, 6), by=st.integers(1, 6), bz=st.integers(1, 6),
       u=st.tuples(st.floats(0, 1, exclude_max=True),
                   st.floats(0, 1, exclude_max=True),
                   st.floats(0, 1, exclude_max=True)))
def test_locate_agrees_with_block_bounds(bx, by, bz, u):
    dec = Decomposition(Bounds.cube(0.0, 1.0), (bx, by, bz), (2, 2, 2))
    p = np.asarray(u)
    bid = int(dec.locate(p))
    assert bid >= 0
    assert dec.info(bid).bounds.contains(p)


# --------------------------------------------------------------------- #
# Interpolation
# --------------------------------------------------------------------- #
@given(seed=st.integers(0, 10_000),
       k=st.integers(1, 20))
@settings(max_examples=40)
def test_trilinear_within_data_range(seed, k):
    rng = np.random.default_rng(seed)
    data = rng.uniform(-3, 3, size=(4, 5, 3, 2))
    pts = rng.uniform(size=(k, 3))
    out = trilinear(data, pts)
    assert np.all(out >= data.min() - 1e-9)
    assert np.all(out <= data.max() + 1e-9)
    assert np.all(np.isfinite(out))


@given(seed=st.integers(0, 10_000))
@settings(max_examples=30)
def test_trilinear_reproduces_affine(seed):
    rng = np.random.default_rng(seed)
    a, b, c, d = rng.uniform(-2, 2, size=4)
    xs = np.linspace(0, 1, 4)
    gx, gy, gz = np.meshgrid(xs, xs, xs, indexing="ij")
    data = (a * gx + b * gy + c * gz + d)[..., None]
    pts = rng.uniform(size=(10, 3))
    expect = a * pts[:, 0] + b * pts[:, 1] + c * pts[:, 2] + d
    assert np.allclose(trilinear(data, pts)[:, 0], expect, atol=1e-10)


# --------------------------------------------------------------------- #
# Step controller
# --------------------------------------------------------------------- #
@given(h=st.floats(1e-8, 0.2), err=st.floats(0.0, 1e6),
       order=st.integers(1, 5))
def test_adapt_h_always_within_bounds(h, err, order):
    cfg = IntegratorConfig()
    out = Integrator.adapt_h(np.array([h]), np.array([err]), order, cfg)
    assert cfg.h_min <= out[0] <= cfg.h_max
    assert np.isfinite(out[0])


@given(h=st.floats(1e-6, 0.1))
def test_adapt_h_monotone_in_error(h):
    cfg = IntegratorConfig()
    errs = np.array([0.01, 0.5, 2.0, 50.0])
    out = Integrator.adapt_h(np.full(4, h), errs, 5, cfg)
    assert np.all(np.diff(out) <= 1e-15)  # larger error -> smaller h


# --------------------------------------------------------------------- #
# LRU cache
# --------------------------------------------------------------------- #
class _FakeBlock:
    def __init__(self, bid):
        self.block_id = bid


@given(capacity=st.integers(1, 8),
       ops=st.lists(st.integers(0, 15), min_size=1, max_size=60))
def test_lru_invariants(capacity, ops):
    cache = LRUBlockCache(capacity)
    for bid in ops:
        if cache.get(bid) is None:
            cache.put(_FakeBlock(bid))  # type: ignore[arg-type]
        # Invariants after every operation:
        assert len(cache) <= capacity
        assert cache.loads - cache.purges == len(cache)
        assert 0.0 <= cache.block_efficiency <= 1.0
        ids = cache.resident_ids
        assert len(ids) == len(set(ids))


@given(capacity=st.integers(1, 6),
       ops=st.lists(st.integers(0, 9), min_size=5, max_size=40))
def test_lru_most_recent_always_resident(capacity, ops):
    cache = LRUBlockCache(capacity)
    for bid in ops:
        if cache.get(bid) is None:
            cache.put(_FakeBlock(bid))  # type: ignore[arg-type]
        assert bid in cache  # the just-touched block is never evicted
