"""Tests of geometry export."""

import numpy as np
import pytest

from repro.integrate.streamline import Status, Streamline
from repro.viz.export import (
    polyline_stats,
    write_csv,
    write_obj,
    write_vtk_polydata,
)


def make_line(sid, pts, status=Status.MAX_STEPS):
    line = Streamline(sid=sid, seed=np.asarray(pts[0], dtype=float))
    line.append_segment(np.asarray(pts, dtype=float))
    line.steps = len(pts) - 1
    line.terminate(status)
    return line


@pytest.fixture
def lines():
    return [
        make_line(0, [[0, 0, 0], [1, 0, 0], [2, 0, 0]]),
        make_line(1, [[0, 1, 0], [0, 2, 0]], Status.OUT_OF_BOUNDS),
    ]


def test_write_obj(tmp_path, lines):
    path = tmp_path / "out.obj"
    n = write_obj(path, lines)
    assert n == 5
    text = path.read_text()
    assert text.count("\nv ") + text.startswith("v ") == 5
    assert "l 1 2 3" in text
    assert "l 4 5" in text


def test_write_obj_skips_degenerate(tmp_path):
    degenerate = Streamline(sid=0, seed=np.zeros(3))
    path = tmp_path / "out.obj"
    assert write_obj(path, [degenerate]) == 0
    assert "l " not in path.read_text()


def test_write_csv(tmp_path, lines):
    path = tmp_path / "out.csv"
    rows = write_csv(path, lines)
    assert rows == 5
    content = path.read_text().strip().splitlines()
    assert content[0] == "sid,index,x,y,z,status"
    assert content[1].startswith("0,0,")
    assert content[-1].endswith("out_of_bounds")


def test_write_vtk(tmp_path, lines):
    path = tmp_path / "out.vtk"
    n = write_vtk_polydata(path, lines)
    assert n == 2
    text = path.read_text()
    assert "POINTS 5 double" in text
    assert "LINES 2 7" in text
    assert "SCALARS sid int 1" in text
    assert "CELL_DATA 2" in text


def test_polyline_stats(lines):
    stats = polyline_stats(lines)
    assert stats.count == 2
    assert stats.total_vertices == 5
    assert stats.mean_vertices == pytest.approx(2.5)
    assert stats.max_arc_length == pytest.approx(2.0)
    assert stats.status_counts == {"max_steps": 1, "out_of_bounds": 1}


def test_polyline_stats_empty():
    stats = polyline_stats([])
    assert stats.count == 0
    assert stats.status_counts == {}
