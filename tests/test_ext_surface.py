"""Tests of stream-surface computation with dynamic seed insertion."""

import numpy as np
import pytest

from repro.ext.surface import StreamSurface, compute_stream_surface
from repro.fields.library import SaddleField, UniformField
from repro.integrate.config import IntegratorConfig
from repro.mesh.bounds import Bounds
from repro.mesh.decomposition import Decomposition


def seeding_segment(a, b):
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)

    def curve(u: np.ndarray) -> np.ndarray:
        return a[None, :] + np.asarray(u)[:, None] * (b - a)[None, :]

    return curve


def test_uniform_flow_needs_no_refinement():
    """Parallel streamlines never diverge: zero insertions."""
    field = UniformField(velocity=(1.0, 0.0, 0.0),
                         domain=Bounds.cube(0.0, 1.0))
    dec = Decomposition(field.domain, (2, 2, 2), (5, 5, 5))
    surface = compute_stream_surface(
        field, dec, seeding_segment([0.05, 0.2, 0.5], [0.05, 0.8, 0.5]),
        initial_seeds=6, max_gap=0.2,
        cfg=IntegratorConfig(max_steps=100, h_max=0.05))
    assert surface.inserted == 0
    assert len(surface.streamlines) == 6


def test_diverging_flow_inserts_seeds():
    """A saddle separates neighbours exponentially: refinement fires."""
    field = SaddleField(expand=2.0, domain=Bounds.cube(-1.0, 1.0))
    dec = Decomposition(field.domain, (2, 2, 2), (5, 5, 5))
    surface = compute_stream_surface(
        field, dec,
        seeding_segment([-0.02, 0.5, 0.0], [0.02, 0.5, 0.0]),
        initial_seeds=3, max_gap=0.08,
        cfg=IntegratorConfig(max_steps=150, h_max=0.02))
    assert surface.inserted > 0
    assert len(surface.streamlines) == 3 + surface.inserted
    # Parameters remain sorted along the seeding curve.
    assert surface.seed_parameters == sorted(surface.seed_parameters)


def test_refinement_respects_budget():
    field = SaddleField(expand=3.0, domain=Bounds.cube(-1.0, 1.0))
    dec = Decomposition(field.domain, (2, 2, 2), (5, 5, 5))
    surface = compute_stream_surface(
        field, dec,
        seeding_segment([-0.05, 0.5, 0.0], [0.05, 0.5, 0.0]),
        initial_seeds=3, max_gap=0.0001, max_insertions=7, max_rounds=3,
        cfg=IntegratorConfig(max_steps=60, h_max=0.02))
    assert surface.inserted <= 7
    assert surface.rounds <= 3


def test_triangle_estimate_positive():
    field = UniformField(velocity=(1.0, 0.0, 0.0),
                         domain=Bounds.cube(0.0, 1.0))
    dec = Decomposition(field.domain, (1, 1, 1), (6, 6, 6))
    surface = compute_stream_surface(
        field, dec, seeding_segment([0.05, 0.2, 0.5], [0.05, 0.8, 0.5]),
        initial_seeds=4, max_gap=0.5,
        cfg=IntegratorConfig(max_steps=50, h_max=0.05))
    assert surface.triangle_count_estimate() > 0


def test_parameter_validation():
    field = UniformField(domain=Bounds.cube(0.0, 1.0))
    dec = Decomposition(field.domain, (1, 1, 1), (4, 4, 4))
    curve = seeding_segment([0.1, 0.1, 0.5], [0.1, 0.9, 0.5])
    with pytest.raises(ValueError):
        compute_stream_surface(field, dec, curve, initial_seeds=1)
    with pytest.raises(ValueError):
        compute_stream_surface(field, dec, curve, max_gap=0.0)
