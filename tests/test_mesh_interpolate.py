"""Tests of trilinear interpolation."""

import numpy as np
import pytest

from repro.mesh.interpolate import trilinear, trilinear_one


def linear_data(nx=5, ny=4, nz=3, coeffs=((1.0, 2.0, 3.0, 0.5),)):
    """Node data sampling affine functions: exactly reproducible by
    trilinear interpolation."""
    xs = np.linspace(0, 1, nx)
    ys = np.linspace(0, 1, ny)
    zs = np.linspace(0, 1, nz)
    gx, gy, gz = np.meshgrid(xs, ys, zs, indexing="ij")
    chans = []
    for (a, b, c, d) in coeffs:
        chans.append(a * gx + b * gy + c * gz + d)
    return np.stack(chans, axis=-1)


def affine(points, a=1.0, b=2.0, c=3.0, d=0.5):
    return (a * points[:, 0] + b * points[:, 1] + c * points[:, 2] + d)


def test_reproduces_affine_functions_exactly():
    data = linear_data()
    rng = np.random.default_rng(1)
    pts = rng.uniform(size=(50, 3))
    out = trilinear(data, pts)
    assert np.allclose(out[:, 0], affine(pts), atol=1e-12)


def test_node_values_exact():
    data = linear_data(4, 4, 4)
    # Query exactly at node (2, 1, 3) of a 4^3 grid.
    p = np.array([[2 / 3, 1 / 3, 1.0]])
    assert np.allclose(trilinear(data, p)[0, 0], data[2, 1, 3, 0])


def test_corners_exact():
    data = linear_data(3, 3, 3)
    assert np.allclose(trilinear(data, np.array([[0.0, 0.0, 0.0]]))[0, 0],
                       data[0, 0, 0, 0])
    assert np.allclose(trilinear(data, np.array([[1.0, 1.0, 1.0]]))[0, 0],
                       data[2, 2, 2, 0])


def test_out_of_range_clamps():
    data = linear_data(3, 3, 3)
    inside = trilinear(data, np.array([[1.0, 0.5, 0.5]]))
    outside = trilinear(data, np.array([[1.7, 0.5, 0.5]]))
    assert np.allclose(inside, outside)


def test_multi_component():
    data = linear_data(coeffs=((1, 0, 0, 0), (0, 1, 0, 0), (0, 0, 1, 0)))
    pts = np.array([[0.3, 0.7, 0.2]])
    out = trilinear(data, pts)
    assert out.shape == (1, 3)
    assert np.allclose(out[0], [0.3, 0.7, 0.2])


def test_interpolation_is_convex_combination():
    """Interpolated values never exceed the data range (no overshoot)."""
    rng = np.random.default_rng(2)
    data = rng.uniform(-5, 5, size=(6, 6, 6, 1))
    pts = rng.uniform(size=(100, 3))
    out = trilinear(data, pts)
    assert out.min() >= data.min() - 1e-12
    assert out.max() <= data.max() + 1e-12


def test_continuity_across_cell_faces():
    rng = np.random.default_rng(3)
    data = rng.uniform(size=(5, 5, 5, 2))
    # Approach an interior node plane from both sides.
    eps = 1e-9
    left = trilinear(data, np.array([[0.5 - eps, 0.3, 0.3]]))
    right = trilinear(data, np.array([[0.5 + eps, 0.3, 0.3]]))
    assert np.allclose(left, right, atol=1e-6)


def test_shape_validation():
    data = linear_data()
    with pytest.raises(ValueError):
        trilinear(data, np.zeros((3,)))  # not (k, 3)
    with pytest.raises(ValueError):
        trilinear(np.zeros((1, 4, 4, 3)), np.zeros((1, 3)))  # too few nodes
    with pytest.raises(ValueError):
        trilinear(np.zeros((4, 4, 4)), np.zeros((1, 3)))  # missing channel


def test_trilinear_one():
    data = linear_data()
    out = trilinear_one(data, np.array([0.5, 0.5, 0.5]))
    assert out.shape == (1,)
    assert np.allclose(out[0], affine(np.array([[0.5, 0.5, 0.5]]))[0])


def test_anisotropic_grid():
    data = linear_data(9, 3, 17)
    rng = np.random.default_rng(4)
    pts = rng.uniform(size=(30, 3))
    assert np.allclose(trilinear(data, pts)[:, 0], affine(pts), atol=1e-12)
