"""Tests of the pooled multi-block advection kernel."""

import numpy as np
import pytest

from repro.fields import UniformField, sample_block, sample_field
from repro.fields.library import RigidRotationField
from repro.integrate.advect import advance_batch
from repro.integrate.config import IntegratorConfig
from repro.integrate.dopri5 import Dopri5
from repro.integrate.pooled import BlockPool, advance_pool
from repro.integrate.streamline import Status, Streamline
from repro.mesh.bounds import Bounds
from repro.mesh.decomposition import Decomposition


@pytest.fixture
def rotation_setup():
    field = RigidRotationField(domain=Bounds.cube(-1.0, 1.0))
    dec = Decomposition(field.domain, (2, 2, 2), (6, 6, 6))
    blocks = sample_field(field, dec)
    return field, dec, blocks


def start_line(dec, seed, sid=0):
    bid = int(dec.locate(np.asarray(seed)))
    return Streamline(sid=sid, seed=np.asarray(seed, dtype=float),
                      block_id=bid)


def test_pool_requires_blocks():
    with pytest.raises(ValueError):
        BlockPool([])


def test_pool_rejects_mismatched_dims():
    field = UniformField(domain=Bounds.cube(0.0, 1.0))
    d1 = Decomposition(field.domain, (2, 1, 1), (4, 4, 4))
    d2 = Decomposition(field.domain, (1, 1, 1), (6, 6, 6))
    b1 = sample_block(field, d1.info(0))
    b2 = sample_block(field, d2.info(0))
    with pytest.raises(ValueError):
        BlockPool([b1, b2])


def test_line_crosses_blocks_inside_pool(rotation_setup):
    """A full rotation crosses all four xy-quadrant blocks without ever
    leaving the pool."""
    field, dec, blocks = rotation_setup
    pool = BlockPool(list(blocks.values()))
    line = start_line(dec, [0.5, 0.0, 0.1])
    cfg = IntegratorConfig(max_steps=2000, h_max=0.02)
    res = advance_pool([line], pool, field.domain, dec, Dopri5(), cfg)
    assert res.exited == []
    assert line.status is Status.MAX_STEPS
    verts = line.vertices()
    quadrants = {(x > 0, y > 0) for x, y in zip(verts[:, 0], verts[:, 1])}
    assert len(quadrants) == 4  # went all the way around


def test_pool_trajectory_identical_to_blockwise(rotation_setup):
    """The pooled kernel must reproduce repeated advance_batch exactly."""
    field, dec, blocks = rotation_setup
    cfg = IntegratorConfig(max_steps=300, h_max=0.03)
    seed = [0.4, 0.1, -0.2]

    pooled = start_line(dec, seed, sid=0)
    advance_pool([pooled], BlockPool(list(blocks.values())),
                 field.domain, dec, Dopri5(), cfg)

    blockwise = start_line(dec, seed, sid=1)
    while blockwise.status is Status.ACTIVE:
        advance_batch([blockwise], blocks[blockwise.block_id],
                      field.domain, Dopri5(), cfg)
        if blockwise.status is Status.ACTIVE:
            bid = int(dec.locate(blockwise.position))
            if bid < 0:
                blockwise.terminate(Status.OUT_OF_BOUNDS)
                break
            blockwise.block_id = bid

    assert pooled.status == blockwise.status
    assert pooled.steps == blockwise.steps
    assert np.allclose(pooled.vertices(), blockwise.vertices(), atol=1e-14)


def test_exit_reports_destination_block(rotation_setup):
    field, dec, blocks = rotation_setup
    # Pool with only one quadrant: the circling line must exit and report
    # a valid destination block id.
    line = start_line(dec, [0.5, 0.1, 0.1])
    pool = BlockPool([blocks[line.block_id]])
    cfg = IntegratorConfig(max_steps=2000, h_max=0.02)
    res = advance_pool([line], pool, field.domain, dec, Dopri5(), cfg)
    assert res.exited == [line]
    assert line.status is Status.ACTIVE
    assert line.block_id >= 0
    assert dec.info(line.block_id).bounds.contains(line.position)


def test_round_limit_returns_in_pool(rotation_setup):
    field, dec, blocks = rotation_setup
    pool = BlockPool(list(blocks.values()))
    line = start_line(dec, [0.5, 0.0, 0.0])
    cfg = IntegratorConfig(max_steps=1000, h_max=0.01)
    res = advance_pool([line], pool, field.domain, dec, Dopri5(), cfg,
                       round_limit=10)
    assert res.in_pool == [line]
    assert line.status is Status.ACTIVE
    assert 0 < line.steps <= 10
    # Resuming continues seamlessly.
    res2 = advance_pool([line], pool, field.domain, dec, Dopri5(), cfg)
    assert res2.in_pool == []
    assert line.status is Status.MAX_STEPS


def test_round_limit_resume_matches_single_call(rotation_setup):
    field, dec, blocks = rotation_setup
    cfg = IntegratorConfig(max_steps=120, h_max=0.03)
    pool = BlockPool(list(blocks.values()))

    a = start_line(dec, [0.3, 0.2, 0.4], sid=0)
    advance_pool([a], pool, field.domain, dec, Dopri5(), cfg)

    b = start_line(dec, [0.3, 0.2, 0.4], sid=1)
    for _ in range(100):
        res = advance_pool([b], pool, field.domain, dec, Dopri5(), cfg,
                           round_limit=7)
        if not res.in_pool:
            break
    assert b.status == a.status
    assert np.allclose(a.vertices(), b.vertices(), atol=1e-14)


def test_mixed_batch_outcomes():
    field = UniformField(velocity=(1.0, 0.0, 0.0),
                         domain=Bounds.cube(0.0, 1.0))
    dec = Decomposition(field.domain, (2, 1, 1), (6, 6, 6))
    blocks = sample_field(field, dec)
    cfg = IntegratorConfig(max_steps=18, h_max=0.05)
    # Line A in block 0 with short budget -> MAX_STEPS inside pool.
    # Line B near the domain's right edge -> OUT_OF_BOUNDS.
    a = start_line(dec, [0.05, 0.5, 0.5], sid=0)
    b = start_line(dec, [0.9, 0.5, 0.5], sid=1)
    pool = BlockPool(list(blocks.values()))
    res = advance_pool([a, b], pool, field.domain, dec, Dopri5(), cfg)
    assert a.status is Status.MAX_STEPS
    assert b.status is Status.OUT_OF_BOUNDS
    assert sorted(l.sid for l in res.terminated) == [0, 1]


def test_wrong_block_id_rejected(rotation_setup):
    field, dec, blocks = rotation_setup
    line = start_line(dec, [0.5, 0.5, 0.5])
    pool = BlockPool([blocks[0]])
    if line.block_id != 0:
        with pytest.raises(ValueError):
            advance_pool([line], pool, field.domain, dec, Dopri5(),
                         IntegratorConfig())


def test_sampler_matches_block_velocity(rotation_setup):
    field, dec, blocks = rotation_setup
    pool = BlockPool(list(blocks.values()))
    rng = np.random.default_rng(0)
    for slot, block in enumerate(pool.blocks):
        pts = block.bounds.denormalized(rng.uniform(0.1, 0.9, (5, 3)))
        f = pool.sampler_for(np.full(5, slot, dtype=np.int64))
        assert np.allclose(f(pts), block.velocity(pts), atol=1e-14)
