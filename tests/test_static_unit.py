"""Unit tests of StaticWorker internals (setup, routing, counting)."""

import numpy as np
import pytest

from repro.core import messages as msg
from repro.core.problem import ProblemSpec
from repro.core.static import StaticWorker
from repro.fields import UniformField
from repro.integrate.streamline import Status, Streamline
from repro.mesh.bounds import Bounds
from repro.sim.cluster import Cluster
from repro.sim.machine import MachineSpec
from repro.storage.costmodel import DataCostModel
from repro.storage.store import BlockStore


def make_setup(n_ranks=4, seeds=None):
    field = UniformField(velocity=(1.0, 0.0, 0.0),
                         domain=Bounds.cube(0.0, 1.0))
    if seeds is None:
        seeds = np.array([[0.1, 0.1, 0.1], [0.9, 0.9, 0.9]])
    problem = ProblemSpec(
        field=field, seeds=seeds,
        blocks_per_axis=(2, 2, 2), cells_per_block=(3, 3, 3),
        cost_model=DataCostModel(modelled_cells_per_block=1000))
    cluster = Cluster(MachineSpec(n_ranks=n_ranks))
    store = BlockStore(field, problem.decomposition)
    workers = [StaticWorker(cluster.context(r), problem, store)
               for r in range(n_ranks)]
    return cluster, problem, workers


def test_setup_assigns_seeds_to_owners():
    cluster, problem, workers = make_setup()
    for w in workers:
        w._setup_seeds()
    owned = {w.ctx.rank: sum(len(v) for v in w.queue.values())
             for w in workers}
    assert sum(owned.values()) == problem.n_seeds
    # Each queued line's block is owned by that worker.
    for w in workers:
        for bid in w.queue:
            assert w.owns_block(bid)


def test_out_of_domain_seed_handled_by_rank0():
    seeds = np.array([[0.5, 0.5, 0.5], [7.0, 7.0, 7.0]])
    cluster, problem, workers = make_setup(seeds=seeds)
    for w in workers:
        w._setup_seeds()
    assert len(workers[0].done_lines) == 1
    assert workers[0].done_lines[0].status is Status.OUT_OF_BOUNDS
    assert workers[0]._pending_term_delta == 1
    for w in workers[1:]:
        assert not w.done_lines


def test_process_streamline_packet_takes_ownership():
    cluster, problem, workers = make_setup()
    w = workers[1]
    line = Streamline(sid=9, seed=np.array([0.6, 0.1, 0.1]), block_id=1)

    class FakeMsg:
        payload = msg.StreamlinePacket([line])

    w._process([FakeMsg()])
    assert w.owns_line(9)
    assert line in w.queue[1]


def test_process_done_sets_flag():
    cluster, problem, workers = make_setup()

    class FakeMsg:
        payload = msg.Done()

    workers[2]._process([FakeMsg()])
    assert workers[2]._done


def test_count_delta_only_accepted_by_root():
    cluster, problem, workers = make_setup()

    class FakeMsg:
        payload = msg.CountDelta(2)

    workers[0]._process([FakeMsg()])
    assert workers[0]._global_count == 2
    with pytest.raises(RuntimeError):
        workers[1]._process([FakeMsg()])


def test_unexpected_payload_raises():
    cluster, problem, workers = make_setup()

    class FakeMsg:
        payload = object()

    with pytest.raises(RuntimeError, match="unexpected"):
        workers[0]._process([FakeMsg()])
