"""Consistency between the three interpolation paths.

``trilinear`` (generic), ``Block.velocity`` (per-block fast path), and
``BlockPool.sampler_for`` (pooled flat-gather) must agree bit-for-bit —
the algorithms' geometry-identity guarantee depends on it.
"""

import numpy as np
import pytest

from repro.fields import SupernovaField, sample_field
from repro.integrate.pooled import BlockPool
from repro.mesh.bounds import Bounds
from repro.mesh.decomposition import Decomposition
from repro.mesh.interpolate import trilinear


@pytest.fixture(scope="module")
def setup():
    field = SupernovaField()
    dec = Decomposition(field.domain, (2, 2, 2), (5, 5, 5))
    blocks = sample_field(field, dec)
    pool = BlockPool([blocks[i] for i in range(8)])
    return field, dec, blocks, pool


def test_three_paths_agree(setup):
    field, dec, blocks, pool = setup
    rng = np.random.default_rng(0)
    for bid in range(8):
        block = blocks[bid]
        pts = block.bounds.denormalized(rng.uniform(0.05, 0.95, (20, 3)))

        via_block = block.velocity(pts)
        unit = block.bounds.normalized(pts)
        via_trilinear = trilinear(block.data, unit)
        slot = pool.slot_of[bid]
        f = pool.sampler_for(np.full(20, slot, dtype=np.int64))
        via_pool = f(pts)

        assert np.array_equal(via_block, via_pool)
        assert np.allclose(via_block, via_trilinear, atol=1e-14)


def test_pool_mixed_slots_agree_with_per_block(setup):
    field, dec, blocks, pool = setup
    rng = np.random.default_rng(1)
    # One point in each block, evaluated in a single mixed-slot call.
    pts = np.stack([blocks[b].bounds.denormalized(rng.uniform(0.2, 0.8, 3))
                    for b in range(8)])
    slots = np.array([pool.slot_of[b] for b in range(8)], dtype=np.int64)
    mixed = pool.sampler_for(slots)(pts)
    for i in range(8):
        solo = blocks[i].velocity(pts[i])
        assert np.array_equal(mixed[i], solo)


def test_clamping_identical_at_faces(setup):
    """Points epsilon outside a block clamp identically in all paths."""
    field, dec, blocks, pool = setup
    block = blocks[0]
    p = block.bounds.hi_array + 1e-9  # just outside the +corner
    via_block = block.velocity(p)
    f = pool.sampler_for(np.array([pool.slot_of[0]], dtype=np.int64))
    via_pool = f(p[None, :])[0]
    assert np.array_equal(via_block, via_pool)
