"""Benchmark-trajectory harness: schema and byte-reproducibility."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent

ARGS = ["--scale", "0.05", "--ranks", "4", "--sample-interval", "2.0",
        "--date", "19700101"]


@pytest.fixture(scope="module")
def bench_mod():
    spec = importlib.util.spec_from_file_location(
        "bench_trajectory", REPO / "benchmarks" / "bench_trajectory.py")
    mod = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("bench_trajectory", mod)
    spec.loader.exec_module(mod)
    return mod


@pytest.fixture(scope="module")
def snapshots(bench_mod, tmp_path_factory):
    """Two tiny harness runs with identical arguments."""
    root = tmp_path_factory.mktemp("bench")
    a_dir, b_dir = root / "a", root / "b"
    assert bench_mod.main(ARGS + ["--out", str(a_dir)]) == 0
    assert bench_mod.main(ARGS + ["--out", str(b_dir)]) == 0
    return (a_dir / "BENCH_19700101.json", b_dir / "BENCH_19700101.json")


def test_bench_snapshot_is_byte_reproducible(snapshots):
    a, b = snapshots
    assert a.read_bytes() == b.read_bytes(), \
        "identical harness runs must be byte-identical"


def test_bench_snapshot_schema(snapshots):
    doc = json.loads(snapshots[0].read_text())
    assert doc["schema"] == 1
    assert doc["generated"] == "19700101"
    assert doc["config"]["ranks"] == 4
    assert len(doc["runs"]) == 6  # 2 seedings x 3 algorithms
    for name, entry in doc["runs"].items():
        assert name.startswith("astro-"), name
        for key in ("wall_clock", "io_time", "comm_time",
                    "block_efficiency", "parallel_efficiency",
                    "critical_path", "participation_ratio",
                    "pingpong_count", "seed_latency"):
            assert key in entry, (name, key)
        path = sum(entry["critical_path"].values())
        assert abs(path - entry["wall_clock"]) < 1e-6
        latency = entry["seed_latency"]
        assert latency["count"] > 0
        assert latency["p50"] <= latency["p95"] <= latency["max"]
        assert latency["max"] <= entry["wall_clock"] + 1e-9


def test_bench_snapshot_diffs_cleanly_against_itself(snapshots):
    from repro.cli import main as cli_main

    snap = str(snapshots[0])
    assert cli_main(["diff", snap, snap]) == 0


def test_bench_multi_dataset_with_oom_probe(bench_mod, tmp_path):
    """--dataset accepts a list; thermal adds the gated OOM probe run."""
    out = tmp_path / "multi"
    args = ["--dataset", "astro,thermal", "--scale", "0.05",
            "--ranks", "4", "--sample-interval", "2.0",
            "--date", "19700102", "--oom-scale", "0.5", "--out", str(out)]
    assert bench_mod.main(args) == 0
    doc = json.loads((out / "BENCH_19700102.json").read_text())
    # 2 datasets x 2 seedings x 3 algorithms + the probe.
    assert len(doc["runs"]) == 13
    assert doc["config"]["dataset"] == "astro,thermal"
    assert doc["config"]["oom_probe_scale"] == 0.5
    probe = doc["runs"]["thermal-dense-static-4-oomprobe"]
    assert probe["status"] == "oom"
    regular = doc["runs"]["thermal-dense-static-4"]
    assert regular["status"] == "ok"


def test_bench_rank_scaling_trajectory(bench_mod, tmp_path):
    """--rank-scaling appends astro/dense/hybrid runs per rank count,
    deduplicating any point the main grid already covers."""
    out = tmp_path / "scaling"
    args = ["--scale", "0.05", "--ranks", "4", "--sample-interval", "2.0",
            "--date", "19700104", "--rank-scaling", "2,4",
            "--out", str(out)]
    assert bench_mod.main(args) == 0
    doc = json.loads((out / "BENCH_19700104.json").read_text())
    # 6 grid runs + the 2-rank scaling point (the 4-rank point is the
    # grid's own astro-dense-hybrid-4).
    assert len(doc["runs"]) == 7
    assert doc["config"]["rank_scaling"] == [2, 4]
    assert doc["runs"]["astro-dense-hybrid-2"]["status"] == "ok"
    assert doc["runs"]["astro-dense-hybrid-4"]["status"] == "ok"


def test_bench_rank_scaling_validation(bench_mod, tmp_path):
    args = ["--scale", "0.05", "--ranks", "4", "--date", "x",
            "--rank-scaling", "4,banana", "--out", str(tmp_path)]
    with pytest.raises(SystemExit, match="rank-scaling"):
        bench_mod.main(args)


def test_bench_oom_probe_can_be_disabled(bench_mod, tmp_path):
    out = tmp_path / "noprobe"
    args = ["--dataset", "thermal", "--scale", "0.05", "--ranks", "4",
            "--sample-interval", "2.0", "--date", "19700103",
            "--no-oom-probe", "--out", str(out)]
    assert bench_mod.main(args) == 0
    doc = json.loads((out / "BENCH_19700103.json").read_text())
    assert len(doc["runs"]) == 6
    assert "oom_probe_scale" not in doc["config"]
    assert not any(n.endswith("oomprobe") for n in doc["runs"])
