"""Additional engine/network edge cases discovered during development."""

import pytest

from repro.sim.cluster import Cluster
from repro.sim.engine import Engine, Signal, Sleep, Wait
from repro.sim.machine import MachineSpec


def test_nested_generators_compose():
    """yield from composes blocking helpers, the core coding pattern."""
    engine = Engine()
    log = []

    def helper(n):
        for i in range(n):
            yield Sleep(1.0)
        return n * 10

    def prog():
        a = yield from helper(2)
        b = yield from helper(1)
        log.append((a, b, engine.now))

    engine.spawn("p", prog())
    engine.run()
    assert log == [(20, 10, 3.0)]


def test_process_can_spawn_process():
    engine = Engine()
    log = []

    def child():
        yield Sleep(1.0)
        log.append("child")

    def parent():
        engine.spawn("child", child())
        yield Sleep(0.5)
        log.append("parent")

    engine.spawn("parent", parent())
    engine.run()
    assert log == ["parent", "child"]


def test_signal_refire_after_drain():
    """A signal can be waited on repeatedly (edge-triggered each time)."""
    engine = Engine()
    sig = Signal()
    hits = []

    def waiter():
        for _ in range(3):
            v = yield Wait(sig)
            hits.append(v)

    def firer():
        for i in range(3):
            yield Sleep(1.0)
            sig.fire(i)

    engine.spawn("w", waiter())
    engine.spawn("f", firer())
    engine.run()
    assert hits == [0, 1, 2]


def test_messages_to_self_via_third_rank():
    """Request/response ping-pong between two ranks terminates."""
    cluster = Cluster(MachineSpec(n_ranks=2))
    transcript = []

    def ping(ctx):
        for i in range(3):
            yield from ctx.comm.send(1, "ping", i, 10)
            msgs = yield from ctx.comm.recv_wait()
            transcript.append(("pong", msgs[0].payload))

    def pong(ctx):
        for _ in range(3):
            msgs = yield from ctx.comm.recv_wait()
            for m in msgs:
                yield from ctx.comm.send(0, "pong", m.payload + 100, 10)

    cluster.engine.spawn("ping", ping(cluster.context(0)))
    cluster.engine.spawn("pong", pong(cluster.context(1)))
    cluster.run()
    assert transcript == [("pong", 100), ("pong", 101), ("pong", 102)]


def test_wall_clock_reflects_critical_path():
    """Two independent ranks: the wall clock is the max, not the sum."""
    cluster = Cluster(MachineSpec(n_ranks=2, seconds_per_step=1.0))

    def prog(ctx, steps):
        yield from ctx.compute(steps)

    cluster.engine.spawn("a", prog(cluster.context(0), 3))
    cluster.engine.spawn("b", prog(cluster.context(1), 7))
    wall = cluster.run()
    assert wall == pytest.approx(7.0)
    assert cluster.metrics[0].compute_time == pytest.approx(3.0)


def test_engine_not_reentrant():
    engine = Engine()

    def prog():
        engine.run()
        yield Sleep(0.0)

    engine.spawn("p", prog())
    with pytest.raises(Exception):
        engine.run()
