"""Tests of the in-block advection kernel and streamline lifecycle."""

import numpy as np
import pytest

from repro.fields import UniformField, sample_block
from repro.fields.library import RigidRotationField, SinkField
from repro.integrate.advect import advance_batch
from repro.integrate.config import IntegratorConfig
from repro.integrate.dopri5 import Dopri5
from repro.integrate.streamline import Status, Streamline, make_streamlines
from repro.mesh.bounds import Bounds
from repro.mesh.decomposition import Decomposition


def make_setup(field, blocks=(2, 2, 2), cells=(6, 6, 6)):
    dec = Decomposition(field.domain, blocks, cells)
    return dec


def block_of(field, dec, bid):
    return sample_block(field, dec.info(bid))


def test_uniform_flow_exits_block():
    field = UniformField(velocity=(1.0, 0.0, 0.0),
                         domain=Bounds.cube(0.0, 1.0))
    dec = make_setup(field)
    block = block_of(field, dec, 0)
    line = Streamline(sid=0, seed=np.array([0.1, 0.25, 0.25]),
                      block_id=0)
    cfg = IntegratorConfig(max_steps=500, h_max=0.05)
    res = advance_batch([line], block, field.domain, Dopri5(), cfg)
    assert line.status is Status.ACTIVE
    assert res.exited == [line]
    assert res.terminated == []
    assert line.position[0] > 0.5  # crossed the block face
    assert line.block_id == -2  # caller must relocate


def test_uniform_flow_eventually_out_of_domain():
    field = UniformField(velocity=(1.0, 0.0, 0.0),
                         domain=Bounds.cube(0.0, 1.0))
    dec = make_setup(field)
    # Last block in x: the particle will exit the domain itself.
    bid = dec.linear_id(1, 0, 0)
    block = block_of(field, dec, bid)
    line = Streamline(sid=0, seed=np.array([0.6, 0.25, 0.25]),
                      block_id=bid)
    cfg = IntegratorConfig(max_steps=500, h_max=0.05)
    res = advance_batch([line], block, field.domain, Dopri5(), cfg)
    assert line.status is Status.OUT_OF_BOUNDS
    assert res.terminated == [line]


def test_max_steps_termination():
    field = RigidRotationField(domain=Bounds.cube(-1.0, 1.0))
    dec = make_setup(field)
    bid = int(dec.locate(np.array([0.1, 0.1, 0.1])))
    block = block_of(field, dec, bid)
    line = Streamline(sid=0, seed=np.array([0.1, 0.1, 0.1]), block_id=bid)
    cfg = IntegratorConfig(max_steps=5, h_init=0.001, h_max=0.001)
    advance_batch([line], block, field.domain, Dopri5(), cfg)
    assert line.status is Status.MAX_STEPS
    assert line.steps == 5


def test_zero_velocity_termination_at_sink():
    field = SinkField(domain=Bounds.cube(-1.0, 1.0))
    dec = make_setup(field)
    bid = int(dec.locate(np.array([0.05, 0.05, 0.05])))
    block = block_of(field, dec, bid)
    line = Streamline(sid=0, seed=np.array([0.05, 0.05, 0.05]),
                      block_id=bid)
    cfg = IntegratorConfig(max_steps=5000, min_speed=1e-4, h_max=0.1)
    advance_batch([line], block, field.domain, Dopri5(), cfg)
    assert line.status is Status.ZERO_VELOCITY
    # The particle converged near the origin.
    assert np.linalg.norm(line.position) < 0.05


def test_geometry_accumulates_with_seed_first():
    field = UniformField(velocity=(1.0, 0.0, 0.0),
                         domain=Bounds.cube(0.0, 1.0))
    dec = make_setup(field)
    block = block_of(field, dec, 0)
    seed = np.array([0.1, 0.2, 0.2])
    line = Streamline(sid=0, seed=seed, block_id=0)
    cfg = IntegratorConfig(max_steps=100, h_max=0.02)
    advance_batch([line], block, field.domain, Dopri5(), cfg)
    verts = line.vertices()
    assert np.allclose(verts[0], seed)
    assert len(verts) == line.steps + 1
    # Vertices advance monotonically in x for uniform +x flow.
    assert np.all(np.diff(verts[:, 0]) > 0)


def test_batch_equals_individual_trajectories():
    field = RigidRotationField(domain=Bounds.cube(-1.0, 1.0))
    dec = make_setup(field)
    bid = int(dec.locate(np.array([0.2, 0.2, 0.1])))
    cfg = IntegratorConfig(max_steps=50, h_max=0.02)
    rng = np.random.default_rng(0)
    seeds = dec.info(bid).bounds.denormalized(
        rng.uniform(0.3, 0.7, size=(6, 3)))

    batch_lines = make_streamlines(seeds)
    for l in batch_lines:
        l.block_id = bid
    advance_batch(batch_lines, block_of(field, dec, bid), field.domain,
                  Dopri5(), cfg)

    for i, seed in enumerate(seeds):
        solo = Streamline(sid=100 + i, seed=seed, block_id=bid)
        advance_batch([solo], block_of(field, dec, bid), field.domain,
                      Dopri5(), cfg)
        assert solo.status == batch_lines[i].status
        assert solo.steps == batch_lines[i].steps
        assert np.allclose(solo.vertices(), batch_lines[i].vertices(),
                           atol=1e-14)


def test_empty_batch():
    field = UniformField(domain=Bounds.cube(0.0, 1.0))
    dec = make_setup(field)
    res = advance_batch([], block_of(field, dec, 0), field.domain,
                        Dopri5(), IntegratorConfig())
    assert res.attempted_steps == 0
    assert res.exited == [] and res.terminated == []


def test_inactive_line_rejected():
    field = UniformField(domain=Bounds.cube(0.0, 1.0))
    dec = make_setup(field)
    line = Streamline(sid=0, seed=np.array([0.1, 0.1, 0.1]))
    line.terminate(Status.MAX_STEPS)
    with pytest.raises(ValueError):
        advance_batch([line], block_of(field, dec, 0), field.domain,
                      Dopri5(), IntegratorConfig())


def test_attempted_at_least_accepted():
    field = RigidRotationField(domain=Bounds.cube(-1.0, 1.0))
    dec = make_setup(field)
    bid = int(dec.locate(np.array([0.2, 0.2, 0.0])))
    line = Streamline(sid=0, seed=np.array([0.2, 0.2, 0.0]), block_id=bid)
    cfg = IntegratorConfig(max_steps=40, h_max=0.05)
    res = advance_batch([line], block_of(field, dec, bid), field.domain,
                        Dopri5(), cfg)
    assert res.attempted_steps >= res.accepted_steps
    assert res.accepted_steps == line.steps


def test_streamline_state_persists_across_calls():
    """Advancing block-by-block must keep h, steps, and time."""
    field = UniformField(velocity=(1.0, 0.0, 0.0),
                         domain=Bounds.cube(0.0, 1.0))
    dec = make_setup(field)
    line = Streamline(sid=0, seed=np.array([0.05, 0.3, 0.3]), block_id=0)
    cfg = IntegratorConfig(max_steps=1000, h_max=0.01)
    hops = 0
    while line.status is Status.ACTIVE:
        bid = int(dec.locate(line.position))
        if bid < 0:
            line.terminate(Status.OUT_OF_BOUNDS)
            break
        line.block_id = bid
        advance_batch([line], block_of(field, dec, bid), field.domain,
                      Dopri5(), cfg)
        hops += 1
        assert hops < 500
    # Crossed the whole domain: ~0.95 units of x at |v| = 1.
    assert line.time == pytest.approx(0.95, abs=0.05)
    assert line.steps >= 90
