#!/usr/bin/env python
"""Figure 2 analogue: magnetic field lines in the tokamak.

Traces field lines inside the toroidal plasma chamber and computes a
Poincare puncture plot: every crossing of the poloidal plane y = 0 (with
x > 0) is recorded.  Closed/regular field lines produce nested rings of
puncture points; the chaotic edge layer produces scattered points — the
structure the paper's fusion dataset is known for.

Run:  python examples/tokamak_fieldlines.py [punctures.csv]
"""

import sys
from pathlib import Path

import numpy as np

import repro
from repro.fields import TokamakField
from repro.integrate import IntegratorConfig


def poincare_punctures(streamline) -> np.ndarray:
    """(R, z) coordinates where the curve crosses the y=0, x>0 half-plane."""
    verts = streamline.vertices()
    y = verts[:, 1]
    crossings = []
    for i in range(len(verts) - 1):
        if y[i] * y[i + 1] < 0 and verts[i, 0] > 0:
            t = y[i] / (y[i] - y[i + 1])
            p = verts[i] + t * (verts[i + 1] - verts[i])
            crossings.append((np.hypot(p[0], p[1]), p[2]))
    return np.asarray(crossings).reshape(-1, 2)


def main() -> None:
    out = Path(sys.argv[1]) if len(sys.argv) > 1 \
        else Path("tokamak_punctures.csv")

    field = TokamakField()
    # Seeds along the outboard midplane at increasing flux radius: inner
    # ones trace regular surfaces, outer ones enter the chaotic edge.
    radii = np.linspace(0.05, 0.95 * field.minor_radius, 24)
    seeds = np.stack([field.major_radius + radii,
                      np.zeros_like(radii), np.zeros_like(radii)], axis=1)

    problem = repro.ProblemSpec(
        field=field, seeds=seeds,
        blocks_per_axis=(4, 4, 4), cells_per_block=(10, 10, 10),
        integ=IntegratorConfig(max_steps=4000, h_max=0.03,
                               rtol=1e-6, atol=1e-8),
        name="tokamak-figure2")
    print(problem.describe())

    result = repro.run_streamlines(problem, algorithm="static",
                                   machine=repro.MachineSpec(n_ranks=8))
    assert result.ok
    print(f"{result!r}")

    rows = []
    for line, rho0 in zip(result.streamlines, radii):
        punctures = poincare_punctures(line)
        rho = field.flux_radius(line.vertices())
        spread = float(rho.std())
        kind = "chaotic" if spread > 0.03 else "regular"
        print(f"  seed rho={rho0:.3f}: {len(punctures):4d} punctures, "
              f"flux-radius spread {spread:.4f} ({kind})")
        for R, z in punctures:
            rows.append((rho0, R, z))

    with open(out, "w") as f:
        f.write("seed_rho,R,z\n")
        for rho0, R, z in rows:
            f.write(f"{rho0:.5f},{R:.6f},{z:.6f}\n")
    print(f"\nwrote {len(rows)} puncture points to {out}")


if __name__ == "__main__":
    main()
