#!/usr/bin/env python
"""Figure 1 analogue: streamlines in the supernova magnetic field.

Seeds streamlines outside the proto-neutron star (as in the paper's
Figure 1), traces them through the turbulent shock-front region with the
recommended (hybrid) algorithm, and writes the resulting polylines to a
Wavefront OBJ file that any 3D viewer can open.

Also demonstrates the §6 decision heuristics on this problem.

Run:  python examples/astrophysics_supernova.py [out.obj]
"""

import sys
from pathlib import Path

import numpy as np

import repro
from repro.analysis.heuristics import recommend_algorithm, traits_of_problem
from repro.fields import SupernovaField
from repro.integrate import IntegratorConfig
from repro.seeding import dense_cluster_seeds
from repro.viz import polyline_stats, write_obj


def main() -> None:
    out = Path(sys.argv[1]) if len(sys.argv) > 1 \
        else Path("supernova_streamlines.obj")

    field = SupernovaField()
    # Seeds on a shell just outside the core — the paper's Figure 1
    # seeding ("seeded outside the proto-neutron star").
    rng = np.random.default_rng(2)
    directions = rng.normal(size=(160, 3))
    directions /= np.linalg.norm(directions, axis=1, keepdims=True)
    seeds = directions * (1.6 * field.core_radius)

    problem = repro.ProblemSpec(
        field=field, seeds=seeds,
        blocks_per_axis=(4, 4, 4), cells_per_block=(10, 10, 10),
        integ=IntegratorConfig(max_steps=400, h_max=0.03,
                               rtol=1e-5, atol=1e-7),
        name="supernova-figure1")
    print(problem.describe())

    traits = traits_of_problem(problem)
    algorithm, reasons = recommend_algorithm(traits)
    print(f"\nrecommended algorithm: {algorithm}")
    for reason in reasons:
        print(f"  - {reason}")

    result = repro.run_streamlines(problem, algorithm=algorithm,
                                   machine=repro.MachineSpec(n_ranks=16))
    assert result.ok
    print(f"\n{result!r}")
    print("termination reasons:", result.status_counts())

    # Curves drawn toward the attracting core wrap tightly: report how
    # many ended deep inside versus escaping through the shock front.
    ends = np.array([l.position for l in result.streamlines])
    end_r = np.linalg.norm(ends, axis=1)
    print(f"ended inside the core region (r < {field.core_radius}): "
          f"{int(np.sum(end_r < field.core_radius))}")
    print(f"escaped past the shock (r > {field.shock_radius}): "
          f"{int(np.sum(end_r > field.shock_radius))}")

    print(f"\n{polyline_stats(result.streamlines)}")
    write_obj(out, result.streamlines,
              comment="streamlines in the supernova magnetic field")
    print(f"wrote {len(result.streamlines)} polylines to {out}")


if __name__ == "__main__":
    main()
