#!/usr/bin/env python
"""Quickstart: trace streamlines in a tokamak field three ways.

Builds a small block-decomposed tokamak dataset, runs all three parallel
algorithms from the paper on a 16-rank simulated cluster, verifies that
they produce identical curves, and prints the performance metrics each
figure of the paper is built from.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro
from repro.fields import TokamakField
from repro.integrate import IntegratorConfig
from repro.seeding import dense_cluster_seeds


def main() -> None:
    field = TokamakField()

    # Seed a bundle of field lines near the magnetic axis.
    seeds = dense_cluster_seeds(
        center=(field.major_radius, 0.0, 0.0), radius=0.08, count=120,
        seed=1, clip_bounds=field.domain)

    problem = repro.ProblemSpec(
        field=field,
        seeds=seeds,
        blocks_per_axis=(4, 4, 4),      # 64 blocks
        cells_per_block=(8, 8, 8),
        integ=IntegratorConfig(max_steps=300, h_max=0.05,
                               rtol=1e-5, atol=1e-7),
        name="quickstart-tokamak")
    print(problem.describe())
    machine = repro.MachineSpec(n_ranks=16)

    # The paper's hybrid tunables (N=10, N_O=200) are calibrated for
    # thousands of streamlines; scale them down with this toy workload
    # (120 curves over 15 slaves) so the overload limit still means
    # something relative to the average load.
    hybrid = repro.HybridConfig(assignment_quantum=4, overload_limit=16)

    results = {}
    for algorithm in repro.ALGORITHMS:
        results[algorithm] = repro.run_streamlines(
            problem, algorithm=algorithm, machine=machine, hybrid=hybrid)

    # Parallelization must not change the numerics: all three algorithms
    # produce identical geometry.
    ref = results["static"].streamlines
    for algorithm, result in results.items():
        for a, b in zip(ref, result.streamlines):
            assert a.status == b.status
            assert np.allclose(a.vertices(), b.vertices(), atol=1e-12)
    print("\nall three algorithms produced identical streamlines "
          f"({len(ref)} curves, "
          f"{sum(l.n_vertices for l in ref)} vertices total)\n")

    header = (f"{'algorithm':<10} {'wall[s]':>9} {'I/O[s]':>9} "
              f"{'comm[s]':>9} {'block-E':>8} {'messages':>9}")
    print(header)
    print("-" * len(header))
    for algorithm, r in results.items():
        print(f"{algorithm:<10} {r.wall_clock:>9.3f} {r.io_time:>9.2f} "
              f"{r.comm_time:>9.3f} {r.block_efficiency:>8.3f} "
              f"{r.messages_sent:>9d}")

    longest = max(ref, key=lambda l: l.arc_length())
    print(f"\nlongest field line: sid={longest.sid}, "
          f"{longest.n_vertices} vertices, "
          f"arc length {longest.arc_length():.2f} "
          f"({longest.status.value})")


if __name__ == "__main__":
    main()
