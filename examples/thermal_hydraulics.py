#!/usr/bin/env python
"""Figures 3/4 + §5.3 analogue: the thermal-hydraulics mixing box.

Part 1 (Figure 3): streamlines seeded uniformly through the box show the
jets, the recirculation zones, and the path to the outlet.

Part 2 (Figure 4 / §5.3): a dense circle of seeds immediately around one
inlet — the stream-surface replica.  Demonstrates the paper's §5.3
findings end to end: Static Allocation runs out of memory (every curve
lands on the one rank owning the inlet blocks), while Load On Demand and
Hybrid complete, with Load On Demand ahead because almost no data needs
to be read and compute dominates.

Run:  python examples/thermal_hydraulics.py
"""

import numpy as np

import repro
from repro.fields import ThermalHydraulicsField
from repro.integrate import IntegratorConfig
from repro.seeding import circle_seeds, grid_seeds


def part1_sparse(field: ThermalHydraulicsField) -> None:
    print("=" * 64)
    print("Part 1: uniform seeding through the box (Figure 3)")
    print("=" * 64)
    problem = repro.ProblemSpec(
        field=field,
        seeds=grid_seeds(field.domain, (6, 6, 6)),
        blocks_per_axis=(4, 4, 4), cells_per_block=(8, 8, 8),
        integ=IntegratorConfig(max_steps=400, h_max=0.02,
                               rtol=1e-5, atol=1e-7),
        name="thermal-sparse")
    result = repro.run_streamlines(problem, algorithm="hybrid",
                                   machine=repro.MachineSpec(n_ranks=8))
    assert result.ok
    print(f"{result!r}")
    print("termination reasons:", result.status_counts())

    # How much of the flow reaches the outlet region?
    ends = np.array([l.position for l in result.streamlines])
    outlet = np.asarray(field.outlet_center)
    near_outlet = np.linalg.norm(ends - outlet, axis=1) < 0.25
    recirculating = [l for l in result.streamlines
                     if l.status.value == "max_steps"]
    print(f"curves ending near the outlet: {int(near_outlet.sum())}")
    print(f"long-lived recirculating curves: {len(recirculating)}\n")


def part2_dense(field: ThermalHydraulicsField) -> None:
    print("=" * 64)
    print("Part 2: dense circle around an inlet (Figure 4 / §5.3)")
    print("=" * 64)
    cy, cz = field.inlet_centers[0]
    problem = repro.ProblemSpec(
        field=field,
        seeds=circle_seeds((0.06, cy, cz), 0.03, 1200),
        blocks_per_axis=(4, 4, 4), cells_per_block=(8, 8, 8),
        integ=IntegratorConfig(max_steps=120, h_max=0.02,
                               rtol=1e-5, atol=1e-7),
        name="thermal-dense")
    # A machine whose per-rank memory cannot hold 1200 buffered curves.
    machine = repro.MachineSpec(n_ranks=8, memory_bytes=384 << 20,
                                cache_blocks=8)

    print(f"{'algorithm':<10} {'outcome':<28} {'wall[s]':>9} "
          f"{'I/O[s]':>8}")
    print("-" * 58)
    for algorithm in repro.ALGORITHMS:
        result = repro.run_streamlines(problem, algorithm=algorithm,
                                       machine=machine)
        if result.ok:
            print(f"{algorithm:<10} {'completed':<28} "
                  f"{result.wall_clock:>9.3f} {result.io_time:>8.2f}")
        else:
            print(f"{algorithm:<10} "
                  f"{'OUT OF MEMORY (rank %d)' % result.oom_rank:<28} "
                  f"{'-':>9} {'-':>8}")
    print("\nAs in the paper, Static Allocation cannot run this seeding: "
          "all curves start\nin blocks owned by one processor, which "
          "exhausts its memory (§5.3).")


def main() -> None:
    field = ThermalHydraulicsField()
    part1_sparse(field)
    part2_dense(field)


if __name__ == "__main__":
    main()
