#!/usr/bin/env python
"""Tutorial: bring your own vector field, machine, and analysis.

Walks through the full downstream-user workflow on a field that is *not*
one of the built-ins:

1. define a custom analytic field (a swirling jet),
2. ask the §6 heuristics which algorithm fits,
3. sanity-check the choice with the first-order cost model,
4. run it, compare against the other algorithms,
5. validate the numerics with a grid-convergence study,
6. export the geometry for a viewer.

Run:  python examples/custom_field_tutorial.py
"""

import numpy as np

import repro
from repro.analysis import (
    TransportStats,
    convergence_study,
    predict_costs,
    recommend_algorithm,
    traits_of_problem,
)
from repro.fields.base import AnalyticField
from repro.integrate import IntegratorConfig
from repro.mesh.bounds import Bounds
from repro.seeding import dense_cluster_seeds
from repro.viz import polyline_stats, write_vtk_polydata


class SwirlingJetField(AnalyticField):
    """A vertical jet with height-dependent swirl — a simple custom field
    a fluids person might sketch in five minutes."""

    name = "swirling-jet"

    def __init__(self) -> None:
        super().__init__(Bounds.cube(-1.0, 1.0))

    def evaluate(self, points: np.ndarray) -> np.ndarray:
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        x, y, z = pts[:, 0], pts[:, 1], pts[:, 2]
        r2 = x * x + y * y
        core = np.exp(-r2 / 0.08)          # jet core profile
        swirl = 2.0 * core * (0.5 + 0.5 * z)  # swirl grows with height
        out = np.empty_like(pts)
        out[:, 0] = -swirl * y
        out[:, 1] = swirl * x
        out[:, 2] = 1.2 * core + 0.05      # upward advection + weak coflow
        return out


def main() -> None:
    field = SwirlingJetField()
    seeds = dense_cluster_seeds((0.0, 0.0, -0.9), 0.1, 300, seed=4,
                                clip_bounds=field.domain)
    problem = repro.ProblemSpec(
        field=field, seeds=seeds,
        blocks_per_axis=(4, 4, 4), cells_per_block=(8, 8, 8),
        integ=IntegratorConfig(max_steps=250, h_max=0.03,
                               rtol=1e-5, atol=1e-7),
        name="swirling-jet")
    print(problem.describe())

    # 2. What does §6 say?
    algo, reasons = recommend_algorithm(traits_of_problem(problem))
    print(f"\n§6 recommendation: {algo}")
    for r in reasons:
        print(f"  - {r}")

    # 3. First-order cost model (measures a seed sample, then predicts).
    machine = repro.MachineSpec(n_ranks=16)
    stats = TransportStats.measure(problem, sample=16)
    print(f"\nmeasured transport: ~{stats.mean_blocks_visited:.1f} blocks "
          f"and {stats.mean_steps:.0f} steps per curve")
    for name, pred in predict_costs(problem, machine, stats=stats).items():
        print(f"  predicted {name:9s}: {pred.blocks_read:6.0f} block "
              f"reads, {pred.messages:7.0f} msgs")

    # 4. Run all three and compare.
    print()
    results = {}
    hybrid_cfg = repro.HybridConfig(assignment_quantum=5,
                                    overload_limit=60)
    for algorithm in repro.ALGORITHMS:
        r = repro.run_streamlines(problem, algorithm=algorithm,
                                  machine=machine, hybrid=hybrid_cfg)
        results[algorithm] = r
        print(f"  {algorithm:9s} wall={r.wall_clock:8.2f}s "
              f"io={r.io_time:7.2f}s comm={r.comm_time:6.3f}s "
              f"E={r.block_efficiency:.3f}")

    # 5. How much error does 8^3-cell sampling introduce here?
    study = convergence_study(field, seeds[:4], resolutions=(4, 8, 16),
                              blocks_per_axis=(4, 4, 4))
    print("\ngrid convergence (max curve deviation vs 48^3 reference):")
    for p in study:
        print(f"  {p.cells_per_block:2d}^3 cells/block: "
              f"{p.max_deviation:.5f}")

    # 6. Export for a viewer.
    lines = results[algo].streamlines
    print(f"\n{polyline_stats(lines)}")
    n = write_vtk_polydata("swirling_jet.vtk", lines,
                           title="swirling jet streamlines")
    print(f"wrote {n} polylines to swirling_jet.vtk")


if __name__ == "__main__":
    main()
