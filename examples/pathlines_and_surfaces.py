#!/usr/bin/env python
"""§8 extensions in action: pathlines, stream surfaces, compact comm.

Part 1 — pathlines: advect particles through a *time-varying* thermal
flow (the steady field with a slowly pulsing inlet), measure the I/O
profile, and quantify the paper's §8 proposal of reading each
(block, time) pair from disk once and forwarding it between ranks.

Part 2 — stream surface: grow a surface from a seeding segment across an
inlet with dynamic seed insertion (the §8 "add new seed points
dynamically" direction) and report how many seeds refinement added.

Part 3 — compact communication: run the hybrid algorithm with and
without full-geometry streamline messages and report the savings.

Part 4 — distributed dynamic seeding: the §8 "add new seed points
dynamically based on an ongoing streamline calculation", running inside
the hybrid algorithm itself: terminating curves spawn children that join
the masters' pools mid-run.

Run:  python examples/pathlines_and_surfaces.py
"""

import numpy as np

import repro
from repro.core.base import partition_contiguous
from repro.ext import (
    UnsteadyDecomposition,
    compare_compact_communication,
    compute_stream_surface,
    integrate_pathlines,
    io_plan_comparison,
)
from repro.fields import ThermalHydraulicsField
from repro.fields.base import TimeVaryingField
from repro.integrate import IntegratorConfig
from repro.mesh.bounds import Bounds
from repro.mesh.decomposition import Decomposition
from repro.seeding import circle_seeds, sparse_random_seeds


class PulsingThermalField(TimeVaryingField):
    """The thermal box with a sinusoidally pulsing jet speed."""

    name = "thermal-pulsing"

    def __init__(self) -> None:
        self._steady = ThermalHydraulicsField()

    @property
    def domain(self) -> Bounds:
        return self._steady.domain

    @property
    def time_range(self):
        return (0.0, 2.0)

    def evaluate(self, points, t):
        v = self._steady.evaluate(points)
        return v * (1.0 + 0.4 * np.sin(2.0 * np.pi * t))


def part1_pathlines() -> None:
    print("=" * 64)
    print("Part 1: pathlines through the pulsing thermal flow")
    print("=" * 64)
    field = PulsingThermalField()
    spatial = Decomposition(field.domain, (4, 4, 4), (6, 6, 6))
    dec = UnsteadyDecomposition(spatial, n_timesteps=9,
                                time_range=field.time_range)
    seeds = sparse_random_seeds(
        field.domain.subbox((0.1, 0.1, 0.1), (0.9, 0.9, 0.9)), 40,
        seed=7)
    cfg = IntegratorConfig(max_steps=100_000, h_init=0.01, h_max=0.01)
    lines, stats = integrate_pathlines(field, dec, seeds, cfg=cfg,
                                       cache_slots=6)
    print(f"integrated {len(lines)} pathlines; "
          f"(block,time) loads={stats.loads} purges={stats.purges} "
          f"distinct={stats.distinct_time_blocks} "
          f"E={stats.block_efficiency:.3f}")

    # §8 I/O plan: what would read-once-forwarding save if these curves
    # were partitioned over 8 ranks?
    n_ranks = 8
    assignment = []
    for rank in range(n_ranks):
        assignment.extend([rank] * len(
            partition_contiguous(len(lines), n_ranks, rank)))
    touches = []
    for line in lines:
        verts = line.vertices()
        bids = spatial.locate(verts)
        keys = []
        for i, b in enumerate(bids):
            if b >= 0:
                t = min(line.time, field.time_range[1])
                lo, _, _ = dec.time_indices(
                    min(t * i / max(len(verts) - 1, 1),
                        field.time_range[1]))
                keys.append((int(b), lo))
        touches.append(sorted(set(keys)))
    from repro.ext.pathlines import TimeBlockKey
    touches = [[TimeBlockKey(*k) for k in t] for t in touches]
    naive, fwd = io_plan_comparison({}, n_ranks, assignment, touches)
    print(f"naive per-rank reads:      {naive.reads_from_disk}")
    print(f"read-once + forward:       {fwd.reads_from_disk} disk reads "
          f"+ {fwd.blocks_forwarded} forwards "
          f"({naive.reads_from_disk - fwd.reads_from_disk} disk reads "
          "saved)\n")


def part2_surface() -> None:
    print("=" * 64)
    print("Part 2: stream surface with dynamic seed insertion")
    print("=" * 64)
    field = ThermalHydraulicsField()
    dec = Decomposition(field.domain, (4, 4, 4), (8, 8, 8))
    cy, cz = field.inlet_centers[0]
    a = np.array([0.06, cy - 0.05, cz])
    b = np.array([0.06, cy + 0.05, cz])

    def seeding_curve(u):
        return a[None, :] + np.asarray(u)[:, None] * (b - a)[None, :]

    surface = compute_stream_surface(
        field, dec, seeding_curve, initial_seeds=6, max_gap=0.06,
        max_insertions=60,
        cfg=IntegratorConfig(max_steps=120, h_max=0.02))
    print(f"initial seeds: 6; dynamically inserted: {surface.inserted} "
          f"in {surface.rounds} rounds")
    print(f"surface: {len(surface.streamlines)} curves, "
          f"~{surface.triangle_count_estimate()} triangles\n")


def part3_compact_comm() -> None:
    print("=" * 64)
    print("Part 3: compact communication (solver state only)")
    print("=" * 64)
    field = ThermalHydraulicsField()
    problem = repro.ProblemSpec(
        field=field,
        seeds=sparse_random_seeds(field.domain, 120, seed=9),
        blocks_per_axis=(4, 4, 4), cells_per_block=(6, 6, 6),
        integ=IntegratorConfig(max_steps=150, h_max=0.02))
    report = compare_compact_communication(
        problem, machine=repro.MachineSpec(n_ranks=8))
    print(f"full geometry:  {report.full_bytes:10d} B on the wire, "
          f"comm {report.full_comm_time:.3f} s")
    print(f"compact:        {report.compact_bytes:10d} B on the wire, "
          f"comm {report.compact_comm_time:.3f} s")
    print(f"saved:          {report.bytes_saved_fraction:.1%} of bytes, "
          f"{report.comm_time_saved:.3f} s of communication time")


def part4_dynamic_seeding() -> None:
    print("=" * 64)
    print("Part 4: dynamic seed creation inside the hybrid algorithm")
    print("=" * 64)
    field = ThermalHydraulicsField()
    problem = repro.ProblemSpec(
        field=field,
        seeds=sparse_random_seeds(
            field.domain.subbox((0.2, 0.2, 0.2), (0.8, 0.8, 0.8)), 24,
            seed=17),
        blocks_per_axis=(4, 4, 4), cells_per_block=(6, 6, 6),
        integ=IntegratorConfig(max_steps=80, h_max=0.02))
    # Respawn curves that ran out of steps at their endpoint, extending
    # the interesting trajectories without re-running anything.
    policy = repro.ContinueThroughBudget(budget=12)
    result = repro.run_streamlines(problem, algorithm="hybrid",
                                   machine=repro.MachineSpec(n_ranks=8),
                                   reseed=policy)
    assert result.ok
    n_dynamic = len(result.streamlines) - problem.n_seeds
    print(f"original seeds: {problem.n_seeds}; dynamically created "
          f"curves: {n_dynamic} (budget 12)")
    print(f"all {len(result.streamlines)} curves terminated: "
          f"{result.status_counts()}\n")


def main() -> None:
    part1_pathlines()
    part2_surface()
    part3_compact_comm()
    part4_dynamic_seeding()


if __name__ == "__main__":
    main()
